package standards

import "testing"

func TestRegistryCompleteness(t *testing.T) {
	reg := Registry()
	if len(reg) < 13 {
		t.Fatalf("registry entries = %d, want all paper citations", len(reg))
	}
	seen := make(map[string]bool)
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Topic == "" {
			t.Fatalf("incomplete entry %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate entry %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestNoHarmonizedStandards(t *testing.T) {
	// The paper: "as of this writing, no standards have been harmonized with
	// Regulation (EU) 2023/1230". The registry must reflect that gap.
	if HarmonizedCount() != 0 {
		t.Fatalf("harmonized = %d, want 0 per the paper", HarmonizedCount())
	}
}

func TestLookup(t *testing.T) {
	e, ok := Lookup("IEC-TS-63074")
	if !ok {
		t.Fatal("IEC TS 63074 missing from registry")
	}
	if e.Kind != KindTechSpec {
		t.Fatalf("kind = %v, want technical-specification", e.Kind)
	}
	if _, ok := Lookup("NOPE"); ok {
		t.Fatal("lookup of unknown ID succeeded")
	}
}

func TestRequirementsReferenceRegistry(t *testing.T) {
	for _, rq := range Requirements() {
		if _, ok := Lookup(rq.StandardID); !ok {
			t.Fatalf("requirement %s references unknown standard %s", rq.ID, rq.StandardID)
		}
		if len(rq.EvidenceKinds) == 0 {
			t.Fatalf("requirement %s has no evidence kinds", rq.ID)
		}
	}
}

func TestConformityEmptyInventory(t *testing.T) {
	rep := CheckConformity(nil)
	if rep.Ready {
		t.Fatal("empty evidence inventory reported CE-ready")
	}
	if rep.MandatoryCovered != 0 {
		t.Fatalf("mandatory covered = %d with no evidence", rep.MandatoryCovered)
	}
	if rep.Readiness != 0 {
		t.Fatalf("readiness = %v, want 0", rep.Readiness)
	}
}

func TestConformityFullInventory(t *testing.T) {
	inventory := map[string][]string{}
	for _, rq := range Requirements() {
		for _, k := range rq.EvidenceKinds {
			inventory[k] = append(inventory[k], "artefact")
		}
	}
	rep := CheckConformity(inventory)
	if !rep.Ready {
		t.Fatal("full inventory not CE-ready")
	}
	if rep.Readiness != 1 {
		t.Fatalf("readiness = %v, want 1", rep.Readiness)
	}
}

func TestConformityPartial(t *testing.T) {
	rep := CheckConformity(map[string][]string{
		"risk-register": {"register.json"},
		"ids-log":       {"alerts.json"},
	})
	if rep.Ready {
		t.Fatal("partial inventory reported ready")
	}
	if rep.MandatoryCovered == 0 {
		t.Fatal("risk-register evidence covered nothing")
	}
	coveredSeen := false
	for _, st := range rep.Statuses {
		if st.Requirement.ID == "REQ-TARA" {
			if !st.Covered {
				t.Fatal("REQ-TARA not covered by risk-register")
			}
			coveredSeen = true
		}
		if st.Requirement.ID == "REQ-SW-INTEGRITY" && st.Covered {
			t.Fatal("REQ-SW-INTEGRITY covered without boot evidence")
		}
	}
	if !coveredSeen {
		t.Fatal("REQ-TARA missing from statuses")
	}
}

func TestAlternativeEvidenceKindsSuffice(t *testing.T) {
	// REQ-CORRUPTION accepts any of three kinds; one should cover it.
	rep := CheckConformity(map[string][]string{"ids-log": {"x"}})
	for _, st := range rep.Statuses {
		if st.Requirement.ID == "REQ-CORRUPTION" && !st.Covered {
			t.Fatal("alternative evidence kind did not cover REQ-CORRUPTION")
		}
	}
}
