// Package shard deterministically partitions the scenario × profile × seed
// campaign cube so a sweep can run as N independent processes (or machines)
// whose merged output is byte-identical to a single-process sweep.
//
// The partition is a pure function of the run key: Assign hashes the
// (scenario, profile, seed) triple with FNV-1a 64 and reduces it modulo the
// shard count. Nothing about enumeration order, pool width, host or process
// enters the hash, so every participant of a campaign — the shard processes,
// the merge step validating coverage, a scheduler placing work — agrees on
// ownership without coordination. The assignment for a fixed key and count
// is part of the checkpoint/merge contract and is locked by a golden test;
// changing the hash invalidates in-flight sharded campaigns and must bump
// the engine version.
package shard

import (
	"fmt"
	"strconv"
	"strings"
)

// Key identifies one run of the sweep cube: a named catalog scenario under a
// named security profile at one seed. It is the unit of shard ownership,
// checkpoint journaling and result-cache addressing.
type Key struct {
	Scenario string
	Profile  string
	Seed     int64
}

// String renders the key as "scenario/profile/seed" for messages and logs.
func (k Key) String() string {
	return k.Scenario + "/" + k.Profile + "/" + strconv.FormatInt(k.Seed, 10)
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Assign maps a run key to its owning shard in [0, count). count <= 1 is the
// unsharded case and always yields shard 0. The hash covers the
// NUL-separated key fields plus the seed as eight big-endian bytes, so
// distinct keys that concatenate equally ("a"+"bc" vs "ab"+"c") stay
// distinct.
func Assign(k Key, count int) int {
	if count <= 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	h = fnvString(h, k.Scenario)
	h = fnvByte(h, 0)
	h = fnvString(h, k.Profile)
	h = fnvByte(h, 0)
	for shift := 56; shift >= 0; shift -= 8 {
		h = fnvByte(h, byte(uint64(k.Seed)>>uint(shift)))
	}
	return int(h % uint64(count))
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// Sel selects one shard of a partitioned campaign: this process runs shard
// Index of Count. The zero value selects the whole cube (unsharded).
type Sel struct {
	// Index is the zero-based shard this process owns.
	Index int
	// Count is the total shard count; 0 or 1 means unsharded.
	Count int
}

// Enabled reports whether the selector actually partitions the cube.
func (s Sel) Enabled() bool { return s.Count > 1 }

// Validate checks the selector invariants: a non-negative count and an index
// inside [0, Count) (the zero value is valid and means unsharded).
func (s Sel) Validate() error {
	if s.Count < 0 {
		return fmt.Errorf("shard: negative shard count %d", s.Count)
	}
	if s.Count <= 1 {
		if s.Index != 0 {
			return fmt.Errorf("shard: index %d without a shard count (want 0 or an i/N selector)", s.Index)
		}
		return nil
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("shard: index %d out of range [0, %d)", s.Index, s.Count)
	}
	return nil
}

// Owns reports whether this selector's shard owns the run key. An unsharded
// selector owns everything.
func (s Sel) Owns(k Key) bool {
	return !s.Enabled() || Assign(k, s.Count) == s.Index
}

// String renders the selector in the "i/N" form Parse accepts.
func (s Sel) String() string {
	count := s.Count
	if count < 1 {
		count = 1
	}
	return fmt.Sprintf("%d/%d", s.Index, count)
}

// Parse reads an "i/N" shard selector (as in `campaign -shard 1/4`): shard
// index i of N total shards, i in [0, N).
func Parse(str string) (Sel, error) {
	idx, cnt, ok := strings.Cut(str, "/")
	if !ok {
		return Sel{}, fmt.Errorf("shard: selector %q is not of the form i/N", str)
	}
	i, err := strconv.Atoi(idx)
	if err != nil {
		return Sel{}, fmt.Errorf("shard: selector %q: bad index: %v", str, err)
	}
	n, err := strconv.Atoi(cnt)
	if err != nil {
		return Sel{}, fmt.Errorf("shard: selector %q: bad count: %v", str, err)
	}
	if n < 1 {
		return Sel{}, fmt.Errorf("shard: selector %q: count must be at least 1", str)
	}
	if i < 0 || i >= n {
		return Sel{}, fmt.Errorf("shard: selector %q: index out of range [0, %d)", str, n)
	}
	return Sel{Index: i, Count: n}, nil
}
