package shard

// Shard tests: the partition must be a stable pure function of the run key —
// golden assignments pin the hash so it can never drift silently (a drift
// would orphan every existing shard layout), and the partition property
// guarantees each run belongs to exactly one shard.

import (
	"fmt"
	"testing"
)

// TestAssignGolden pins the FNV-1a assignment for known keys. These values
// are part of the on-disk compatibility surface: sharded campaigns written
// by one binary must merge under another, so a change here is a breaking
// change to every existing shard layout, not a refactor.
func TestAssignGolden(t *testing.T) {
	cases := []struct {
		key   Key
		count int
		want  int
	}{
		{Key{Scenario: "baseline", Profile: "unsecured", Seed: 1}, 2, 1},
		{Key{Scenario: "baseline", Profile: "unsecured", Seed: 2}, 2, 0},
		{Key{Scenario: "baseline", Profile: "secured", Seed: 1}, 2, 0},
		{Key{Scenario: "gnss-spoof", Profile: "unsecured", Seed: 1}, 2, 1},
		{Key{Scenario: "gnss-spoof", Profile: "secured", Seed: 7}, 4, 2},
		{Key{Scenario: "rf-jamming", Profile: "secured", Seed: 42}, 4, 0},
		{Key{Scenario: "baseline", Profile: "unsecured", Seed: 1}, 7, 4},
	}
	for _, c := range cases {
		if got := Assign(c.key, c.count); got != c.want {
			t.Errorf("Assign(%v, %d) = %d, want %d", c.key, c.count, got, c.want)
		}
	}
}

// TestAssignProperties: assignment is in range, independent of call order,
// degenerate counts collapse to shard 0, and all three key fields (and the
// seed's full 64 bits) participate.
func TestAssignProperties(t *testing.T) {
	k := Key{Scenario: "baseline", Profile: "secured", Seed: 3}
	for _, count := range []int{1, 2, 3, 8, 64} {
		got := Assign(k, count)
		if got < 0 || got >= count {
			t.Fatalf("Assign(%v, %d) = %d out of range", k, count, got)
		}
		if got != Assign(k, count) {
			t.Fatalf("Assign not deterministic for count %d", count)
		}
	}
	if got := Assign(k, 0); got != 0 {
		t.Errorf("Assign(count=0) = %d, want 0", got)
	}
	if got := Assign(k, -3); got != 0 {
		t.Errorf("Assign(count=-3) = %d, want 0", got)
	}

	// Distinct keys must be able to land on distinct shards; check the key
	// fields actually feed the hash by finding at least one differing
	// assignment per varied field over a small probe set.
	varies := func(mutate func(int64) Key) bool {
		base := Assign(mutate(0), 16)
		for i := int64(1); i < 64; i++ {
			if Assign(mutate(i), 16) != base {
				return true
			}
		}
		return false
	}
	if !varies(func(i int64) Key { return Key{Scenario: fmt.Sprintf("s%d", i), Profile: "p", Seed: 1} }) {
		t.Error("scenario does not influence assignment")
	}
	if !varies(func(i int64) Key { return Key{Scenario: "s", Profile: fmt.Sprintf("p%d", i), Seed: 1} }) {
		t.Error("profile does not influence assignment")
	}
	if !varies(func(i int64) Key { return Key{Scenario: "s", Profile: "p", Seed: i} }) {
		t.Error("seed does not influence assignment")
	}
	// High seed bits must matter too (the hash covers all 8 bytes).
	if !varies(func(i int64) Key { return Key{Scenario: "s", Profile: "p", Seed: i << 56} }) {
		t.Error("high seed bits do not influence assignment")
	}
}

// TestPartition: for any count, every key is owned by exactly one shard, and
// the union of all shards' keys is the whole cube.
func TestPartition(t *testing.T) {
	scenarios := []string{"baseline", "gnss-spoof", "rf-jamming"}
	profiles := []string{"unsecured", "secured"}
	for _, count := range []int{1, 2, 3, 5} {
		for _, sc := range scenarios {
			for _, pr := range profiles {
				for seed := int64(1); seed <= 20; seed++ {
					k := Key{Scenario: sc, Profile: pr, Seed: seed}
					owners := 0
					for i := 0; i < count; i++ {
						if (Sel{Index: i, Count: count}).Owns(k) {
							owners++
						}
					}
					if owners != 1 {
						t.Fatalf("key %v owned by %d shard(s) of %d, want exactly 1", k, owners, count)
					}
				}
			}
		}
	}
}

// TestSelDisabledOwnsAll: a disabled selector (count ≤ 1) owns every key —
// the unsharded campaign is shard 0 of 1.
func TestSelDisabledOwnsAll(t *testing.T) {
	for _, sel := range []Sel{{}, {Index: 0, Count: 1}} {
		if sel.Enabled() {
			t.Fatalf("Sel %+v unexpectedly enabled", sel)
		}
		if !sel.Owns(Key{Scenario: "x", Profile: "y", Seed: 99}) {
			t.Fatalf("disabled Sel %+v must own every key", sel)
		}
	}
}

// TestParse: the "i/N" CLI form round-trips, and malformed or out-of-range
// selectors are rejected.
func TestParse(t *testing.T) {
	good := []struct {
		in   string
		want Sel
	}{
		{"0/1", Sel{Index: 0, Count: 1}},
		{"0/4", Sel{Index: 0, Count: 4}},
		{"3/4", Sel{Index: 3, Count: 4}},
	}
	for _, c := range good {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("Parse(%q).Validate(): %v", c.in, err)
		}
	}
	bad := []string{"", "3", "a/b", "1/0", "4/4", "-1/4", "1/-2", "1/2/3", "1 /2"}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", in)
		}
	}
}

// TestSelString: the selector renders back to its CLI form.
func TestSelString(t *testing.T) {
	if got := (Sel{Index: 2, Count: 8}).String(); got != "2/8" {
		t.Errorf("String() = %q, want \"2/8\"", got)
	}
}
