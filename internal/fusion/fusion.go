// Package fusion implements the collaborative people-detection function of
// the paper's Fig. 2: detections from multiple sensors — the forwarder's own
// LiDAR/camera and the drone's aerial camera ("an additional point of view to
// eliminate occlusions caused by terrain obstacles") — are associated into
// tracks and confirmed according to a configurable policy.
//
// Two policies matter for the E2a ablation: OR-fusion (confirm on first hit,
// lowest latency, highest false-alarm rate) and K-of-window voting (confirm
// after K associated hits, trading latency for false-alarm suppression).
package fusion

import (
	"time"

	"repro/internal/geo"
	"repro/internal/sensors"
)

// Scanner is any perception sensor that can be polled for detections.
// sensors.Lidar, sensors.Camera, sensors.Ultrasonic and sensors.AerialCamera
// all satisfy it.
type Scanner interface {
	Scan(from geo.Vec, targets []sensors.Target, w sensors.Weather) []sensors.Detection
}

var (
	_ Scanner = (*sensors.Lidar)(nil)
	_ Scanner = (*sensors.Camera)(nil)
	_ Scanner = (*sensors.Ultrasonic)(nil)
	_ Scanner = (*sensors.AerialCamera)(nil)
)

// Station is one observation post (a machine) carrying a suite of scanners at
// a moving position.
type Station struct {
	Name     string
	Pos      func() geo.Vec
	Scanners []Scanner
}

// Scan polls every scanner at the station's current position.
func (st *Station) Scan(targets []sensors.Target, w sensors.Weather) []sensors.Detection {
	var out []sensors.Detection
	from := st.Pos()
	for _, sc := range st.Scanners {
		out = append(out, sc.Scan(from, targets, w)...)
	}
	return out
}

// Track is a fused hypothesis that a person/object is present.
type Track struct {
	ID          int           `json:"id"`
	Pos         geo.Vec       `json:"pos"`
	Hits        int           `json:"hits"`
	FirstSeen   time.Duration `json:"firstSeenNs"`
	LastSeen    time.Duration `json:"lastSeenNs"`
	Confirmed   bool          `json:"confirmed"`
	ConfirmedAt time.Duration `json:"confirmedAtNs"`
	// TargetID is the majority ground-truth association ("" for clutter).
	TargetID string `json:"targetId"`
	// SensorHits counts contributions per sensor name.
	SensorHits map[string]int `json:"sensorHits"`

	targetVotes map[string]int
}

// FalseAlarm reports whether a confirmed track has no ground-truth target
// behind it (scoring only; the controller cannot know this).
func (tr *Track) FalseAlarm() bool { return tr.Confirmed && tr.TargetID == "" }

// Options configures a Tracker.
type Options struct {
	// GateM is the association gate: a detection within this distance of an
	// existing track updates it. Default 3 m.
	GateM float64
	// ConfirmHits is the number of associated hits required to confirm a
	// track. 1 reproduces OR-fusion. Default 2.
	ConfirmHits int
	// ExpireAfter drops tracks not updated for this long. Default 5 s.
	ExpireAfter time.Duration
}

func (o Options) withDefaults() Options {
	if o.GateM == 0 {
		o.GateM = 3
	}
	if o.ConfirmHits == 0 {
		o.ConfirmHits = 2
	}
	if o.ExpireAfter == 0 {
		o.ExpireAfter = 5 * time.Second
	}
	return o
}

// Tracker associates detections into tracks and confirms them.
type Tracker struct {
	opts   Options
	tracks []*Track
	nextID int

	confirmedTotal int
	falseAlarms    int
	sumConfirmLat  time.Duration

	// free recycles expired Track objects (and their per-sensor/per-target
	// maps) so steady-state tracking does not allocate. Recycled tracks are
	// reused by the next Update; callers must not retain expired tracks.
	free []*Track
	// newly is the reused backing array of Update's return value.
	newly []*Track
}

// NewTracker creates a tracker with the given options.
func NewTracker(opts Options) *Tracker {
	return &Tracker{opts: opts.withDefaults(), nextID: 1}
}

// Update ingests one scan's detections at virtual time now and returns the
// tracks confirmed by this update. The returned slice is a scratch buffer
// owned by the tracker, valid until the next Update.
//
//worksim:hotpath
func (t *Tracker) Update(now time.Duration, dets []sensors.Detection) []*Track {
	newlyConfirmed := t.newly[:0]
	for _, d := range dets {
		tr := t.associate(d.Pos)
		if tr == nil {
			tr = t.newTrack()
			tr.ID = t.nextID
			tr.Pos = d.Pos
			tr.FirstSeen = now
			t.nextID++
			t.tracks = append(t.tracks, tr)
		}
		tr.Hits++
		tr.LastSeen = now
		// Position: exponential blend toward the newest detection.
		tr.Pos = tr.Pos.Lerp(d.Pos, 0.5)
		tr.SensorHits[d.Sensor]++
		tr.targetVotes[d.TargetID]++
		tr.TargetID = majority(tr.targetVotes)
		if !tr.Confirmed && tr.Hits >= t.opts.ConfirmHits {
			tr.Confirmed = true
			tr.ConfirmedAt = now
			t.confirmedTotal++
			t.sumConfirmLat += now - tr.FirstSeen
			if tr.FalseAlarm() {
				t.falseAlarms++
			}
			newlyConfirmed = append(newlyConfirmed, tr)
		}
	}
	t.expire(now)
	t.newly = newlyConfirmed
	return newlyConfirmed
}

// newTrack returns a zeroed track, recycling an expired one when available.
func (t *Tracker) newTrack() *Track {
	if n := len(t.free); n > 0 {
		tr := t.free[n-1]
		t.free[n-1] = nil
		t.free = t.free[:n-1]
		sh, tv := tr.SensorHits, tr.targetVotes
		clear(sh)
		clear(tv)
		*tr = Track{SensorHits: sh, targetVotes: tv}
		return tr
	}
	return &Track{
		SensorHits:  make(map[string]int),
		targetVotes: make(map[string]int),
	}
}

//worksim:hotpath
func (t *Tracker) associate(p geo.Vec) *Track {
	var best *Track
	bestDist := t.opts.GateM
	for _, tr := range t.tracks {
		if d := tr.Pos.Dist(p); d <= bestDist {
			best, bestDist = tr, d
		}
	}
	return best
}

//worksim:hotpath
func (t *Tracker) expire(now time.Duration) {
	kept := t.tracks[:0]
	for _, tr := range t.tracks {
		if now-tr.LastSeen <= t.opts.ExpireAfter {
			kept = append(kept, tr)
		} else {
			t.free = append(t.free, tr)
		}
	}
	for i := len(kept); i < len(t.tracks); i++ {
		t.tracks[i] = nil
	}
	t.tracks = kept
}

// Active returns the live tracks.
func (t *Tracker) Active() []*Track {
	out := make([]*Track, len(t.tracks))
	copy(out, t.tracks)
	return out
}

// ConfirmedNear returns confirmed tracks within radius of pos — the safety
// controller's protective-field query.
func (t *Tracker) ConfirmedNear(pos geo.Vec, radius float64) []*Track {
	var out []*Track
	for _, tr := range t.tracks {
		if tr.Confirmed && tr.Pos.Dist(pos) <= radius {
			out = append(out, tr)
		}
	}
	return out
}

// AppendConfirmedPositions appends the positions of confirmed tracks within
// radius of pos to dst and returns it — the allocation-free form of
// ConfirmedNear for the per-tick protective-field query.
//
//worksim:hotpath
func (t *Tracker) AppendConfirmedPositions(dst []geo.Vec, pos geo.Vec, radius float64) []geo.Vec {
	for _, tr := range t.tracks {
		if tr.Confirmed && tr.Pos.Dist(pos) <= radius {
			dst = append(dst, tr.Pos)
		}
	}
	return dst
}

// Metrics summarises tracker performance for the experiment harness.
type Metrics struct {
	ConfirmedTotal     int           `json:"confirmedTotal"`
	FalseAlarms        int           `json:"falseAlarms"`
	MeanConfirmLatency time.Duration `json:"meanConfirmLatencyNs"`
}

// Metrics returns cumulative tracker metrics.
func (t *Tracker) Metrics() Metrics {
	m := Metrics{ConfirmedTotal: t.confirmedTotal, FalseAlarms: t.falseAlarms}
	if t.confirmedTotal > 0 {
		m.MeanConfirmLatency = t.sumConfirmLat / time.Duration(t.confirmedTotal)
	}
	return m
}

func majority(votes map[string]int) string {
	best, bestN := "", -1
	for k, n := range votes {
		if n > bestN || (n == bestN && k > best) {
			best, bestN = k, n
		}
	}
	return best
}
