package fusion

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/rng"
	"repro/internal/sensors"
)

func det(id string, pos geo.Vec, sensor string) sensors.Detection {
	return sensors.Detection{TargetID: id, Pos: pos, Confidence: 0.9, Sensor: sensor}
}

func TestConfirmAfterKHits(t *testing.T) {
	tr := NewTracker(Options{ConfirmHits: 3})
	p := geo.V(10, 10)
	if got := tr.Update(0, []sensors.Detection{det("w1", p, "lidar")}); len(got) != 0 {
		t.Fatal("confirmed on first hit with K=3")
	}
	if got := tr.Update(time.Second, []sensors.Detection{det("w1", p, "lidar")}); len(got) != 0 {
		t.Fatal("confirmed on second hit with K=3")
	}
	got := tr.Update(2*time.Second, []sensors.Detection{det("w1", p, "camera")})
	if len(got) != 1 {
		t.Fatalf("confirmed = %d, want 1 on third hit", len(got))
	}
	if got[0].TargetID != "w1" {
		t.Fatalf("target = %q, want w1", got[0].TargetID)
	}
	if got[0].SensorHits["lidar"] != 2 || got[0].SensorHits["camera"] != 1 {
		t.Fatalf("sensor hits = %v", got[0].SensorHits)
	}
}

func TestORFusionConfirmsImmediately(t *testing.T) {
	tr := NewTracker(Options{ConfirmHits: 1})
	got := tr.Update(0, []sensors.Detection{det("w1", geo.V(5, 5), "lidar")})
	if len(got) != 1 {
		t.Fatal("OR-fusion must confirm on first hit")
	}
	if got[0].ConfirmedAt != 0 {
		t.Fatalf("ConfirmedAt = %v, want 0", got[0].ConfirmedAt)
	}
}

func TestAssociationGate(t *testing.T) {
	tr := NewTracker(Options{ConfirmHits: 2, GateM: 3})
	tr.Update(0, []sensors.Detection{det("w1", geo.V(0, 0), "lidar")})
	// 10 m away: outside the gate, new track — no confirmation.
	if got := tr.Update(time.Second, []sensors.Detection{det("w1", geo.V(10, 0), "lidar")}); len(got) != 0 {
		t.Fatal("distant detection associated into existing track")
	}
	if len(tr.Active()) != 2 {
		t.Fatalf("tracks = %d, want 2", len(tr.Active()))
	}
}

func TestTrackExpiry(t *testing.T) {
	tr := NewTracker(Options{ConfirmHits: 2, ExpireAfter: 2 * time.Second})
	tr.Update(0, []sensors.Detection{det("w1", geo.V(0, 0), "lidar")})
	tr.Update(5*time.Second, nil) // beyond expiry
	if len(tr.Active()) != 0 {
		t.Fatalf("tracks = %d, want 0 after expiry", len(tr.Active()))
	}
}

func TestFalseAlarmScoring(t *testing.T) {
	tr := NewTracker(Options{ConfirmHits: 2})
	clutter := sensors.Detection{Pos: geo.V(3, 3), Sensor: "camera", FalsePositive: true}
	tr.Update(0, []sensors.Detection{clutter})
	got := tr.Update(time.Second, []sensors.Detection{clutter})
	if len(got) != 1 {
		t.Fatalf("confirmed = %d, want 1", len(got))
	}
	if !got[0].FalseAlarm() {
		t.Fatal("clutter track not scored as false alarm")
	}
	if tr.Metrics().FalseAlarms != 1 {
		t.Fatalf("FalseAlarms = %d, want 1", tr.Metrics().FalseAlarms)
	}
}

func TestConfirmedNear(t *testing.T) {
	tr := NewTracker(Options{ConfirmHits: 1})
	tr.Update(0, []sensors.Detection{
		det("w1", geo.V(0, 0), "lidar"),
		det("w2", geo.V(100, 100), "lidar"),
	})
	near := tr.ConfirmedNear(geo.V(1, 1), 10)
	if len(near) != 1 || near[0].TargetID != "w1" {
		t.Fatalf("near = %v", near)
	}
}

func TestMeanConfirmLatency(t *testing.T) {
	tr := NewTracker(Options{ConfirmHits: 2})
	p := geo.V(0, 0)
	tr.Update(0, []sensors.Detection{det("w1", p, "lidar")})
	tr.Update(4*time.Second, []sensors.Detection{det("w1", p, "lidar")})
	m := tr.Metrics()
	if m.MeanConfirmLatency != 4*time.Second {
		t.Fatalf("latency = %v, want 4s", m.MeanConfirmLatency)
	}
}

func TestStationCombinesScanners(t *testing.T) {
	grid, err := geo.NewGrid(50, 50, 2)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	r := rng.New(3)
	st := &Station{
		Name: "forwarder",
		Pos:  func() geo.Vec { return geo.V(50, 50) },
		Scanners: []Scanner{
			sensors.NewLidar(r, grid),
			sensors.NewCamera(r, grid),
		},
	}
	targets := []sensors.Target{{ID: "w1", Pos: geo.V(55, 50)}}
	bySensor := map[string]bool{}
	for i := 0; i < 100; i++ {
		for _, d := range st.Scan(targets, sensors.Clear()) {
			bySensor[d.Sensor] = true
		}
	}
	if !bySensor["lidar"] || !bySensor["camera"] {
		t.Fatalf("station sensors seen = %v, want both", bySensor)
	}
}

func TestDronePOVDefeatsOcclusion(t *testing.T) {
	// The Fig. 2 scenario in miniature: a tree wall hides the worker from the
	// forwarder; adding the drone's aerial camera restores detection.
	grid, err := geo.NewGrid(100, 100, 1)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	for row := 0; row < 100; row++ {
		grid.Set(geo.C(55, row), geo.Tree)
	}
	r := rng.New(5)
	fwOnly := &Station{
		Pos:      func() geo.Vec { return geo.V(50, 50) },
		Scanners: []Scanner{sensors.NewLidar(r, grid), sensors.NewCamera(r, grid)},
	}
	drone := &Station{
		Pos:      func() geo.Vec { return geo.V(58, 50) },
		Scanners: []Scanner{sensors.NewAerialCamera(r, grid)},
	}
	targets := []sensors.Target{{ID: "w1", Pos: geo.V(60, 50)}}

	real := func(ds []sensors.Detection) bool {
		for _, d := range ds {
			if !d.FalsePositive {
				return true
			}
		}
		return false
	}
	fwHits, droneHits := 0, 0
	for i := 0; i < 200; i++ {
		if real(fwOnly.Scan(targets, sensors.Clear())) {
			fwHits++
		}
		if real(drone.Scan(targets, sensors.Clear())) {
			droneHits++
		}
	}
	if fwHits != 0 {
		t.Fatalf("forwarder saw through the wall %d times", fwHits)
	}
	if droneHits < 150 {
		t.Fatalf("drone hits = %d/200, want high", droneHits)
	}
}

func TestPositionBlending(t *testing.T) {
	tr := NewTracker(Options{ConfirmHits: 1, GateM: 5})
	tr.Update(0, []sensors.Detection{det("w1", geo.V(0, 0), "lidar")})
	tr.Update(time.Second, []sensors.Detection{det("w1", geo.V(2, 0), "lidar")})
	tracks := tr.Active()
	if len(tracks) != 1 {
		t.Fatalf("tracks = %d, want 1", len(tracks))
	}
	if tracks[0].Pos.X <= 0 || tracks[0].Pos.X >= 2 {
		t.Fatalf("blended X = %v, want in (0,2)", tracks[0].Pos.X)
	}
}
