package machine

import (
	"time"

	"repro/internal/geo"
)

// FieldDecision is the protective-field assessment outcome.
type FieldDecision int

// Field decisions, ordered by severity.
const (
	FieldClear FieldDecision = iota + 1
	FieldWarning
	FieldProtective
)

// String returns a short decision label.
func (d FieldDecision) String() string {
	switch d {
	case FieldClear:
		return "clear"
	case FieldWarning:
		return "warning"
	case FieldProtective:
		return "protective"
	default:
		return "unknown"
	}
}

// SafetyController implements the machine's protective and warning fields
// (ISO 13849-style): confirmed person tracks inside the protective radius
// force a stop; inside the warning radius they force slow mode. Stops are
// held for HoldTime after the field clears to avoid stop/go chatter.
type SafetyController struct {
	// ProtectiveRadiusM forces a stop when a confirmed track is inside.
	ProtectiveRadiusM float64
	// WarningRadiusM forces slow mode when a confirmed track is inside.
	WarningRadiusM float64
	// HoldTime keeps the stop latched after the last in-field detection.
	HoldTime time.Duration

	machine     *Machine
	lastBreach  time.Duration
	breached    bool
	breachCount int
}

// NewSafetyController creates a controller for m with forwarder-scale fields
// (protective 6 m, warning 12 m, 3 s hold).
func NewSafetyController(m *Machine) *SafetyController {
	return &SafetyController{
		ProtectiveRadiusM: 6,
		WarningRadiusM:    12,
		HoldTime:          3 * time.Second,
		machine:           m,
	}
}

// Assess evaluates confirmed track positions against the fields at virtual
// time now and drives the machine's person latches. It returns the decision.
func (sc *SafetyController) Assess(now time.Duration, confirmed []geo.Vec) FieldDecision {
	decision := FieldClear
	pos := sc.machine.Pose.Pos
	for _, p := range confirmed {
		d := pos.Dist(p)
		if d <= sc.ProtectiveRadiusM {
			decision = FieldProtective
			break
		}
		if d <= sc.WarningRadiusM {
			decision = FieldWarning
		}
	}

	switch decision {
	case FieldProtective:
		if !sc.breached {
			sc.breachCount++
		}
		sc.breached = true
		sc.lastBreach = now
		sc.machine.SetStop(StopReasonPerson, true)
		sc.machine.SetSlow(StopReasonPerson, true)
	case FieldWarning:
		sc.machine.SetSlow(StopReasonPerson, true)
		sc.releaseStopIfHeldOut(now)
	case FieldClear:
		sc.machine.SetSlow(StopReasonPerson, false)
		sc.releaseStopIfHeldOut(now)
	}
	return decision
}

func (sc *SafetyController) releaseStopIfHeldOut(now time.Duration) {
	if sc.breached && now-sc.lastBreach >= sc.HoldTime {
		sc.breached = false
		sc.machine.SetStop(StopReasonPerson, false)
	}
}

// BreachCount returns the number of distinct protective-field breaches.
func (sc *SafetyController) BreachCount() int { return sc.breachCount }
