// Package machine models the worksite actors of the paper's Fig. 1: the
// autonomous forwarder, the manually operated harvester, and the observation
// drone — their kinematics, mission states, and the safety controller that
// turns fused people detections and security telemetry into stop decisions.
//
// The safety controller follows the machinery-safety shape of ISO 13849:
// independent named stop latches (protective field, communication watchdog,
// navigation integrity, manual e-stop) combine by OR into the safe state, and
// a warning field degrades speed before the protective field forces a stop.
// Security-informed safety per IEC TS 63074 enters through the latches wired
// to comms and GNSS integrity.
package machine

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
)

// Kind classifies a worksite machine.
type Kind int

// Machine kinds.
const (
	KindForwarder Kind = iota + 1
	KindHarvester
	KindDrone
)

// String returns a short kind label.
func (k Kind) String() string {
	switch k {
	case KindForwarder:
		return "forwarder"
	case KindHarvester:
		return "harvester"
	case KindDrone:
		return "drone"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// State is the machine's mission state.
type State int

// Mission states.
const (
	StateIdle State = iota + 1
	StateDriving
	StateLoading
	StateUnloading
)

// String returns a short state label.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateDriving:
		return "driving"
	case StateLoading:
		return "loading"
	case StateUnloading:
		return "unloading"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Stop latch reasons used by the worksite stack.
const (
	StopReasonPerson   = "protective-field"
	StopReasonComms    = "comms-watchdog"
	StopReasonNav      = "nav-integrity"
	StopReasonEStop    = "manual-estop"
	StopReasonSecurity = "security-response"
)

// Machine is one worksite actor. It is driven by Tick from simulation events.
type Machine struct {
	ID   string
	Kind Kind
	Pose geo.Pose

	// MaxSpeedMPS is the nominal cruise speed; SlowSpeedMPS applies in the
	// warning field or degraded ("limp") mode.
	MaxSpeedMPS  float64
	SlowSpeedMPS float64

	state    State
	path     []geo.Vec
	pathIdx  int
	slow     map[string]bool
	stops    map[string]bool
	odometer float64

	// stop bookkeeping for experiment metrics
	stopTransitions int
	stoppedFor      time.Duration
}

// New creates a machine at the given pose with kind-appropriate speeds.
func New(id string, kind Kind, pose geo.Pose) *Machine {
	m := &Machine{
		ID:    id,
		Kind:  kind,
		Pose:  pose,
		state: StateIdle,
		slow:  make(map[string]bool),
		stops: make(map[string]bool),
	}
	switch kind {
	case KindForwarder:
		m.MaxSpeedMPS, m.SlowSpeedMPS = 4.5, 1.0
	case KindHarvester:
		m.MaxSpeedMPS, m.SlowSpeedMPS = 2.0, 0.5
	case KindDrone:
		m.MaxSpeedMPS, m.SlowSpeedMPS = 12, 4
	}
	return m
}

// State returns the mission state.
func (m *Machine) State() State { return m.state }

// SetState transitions the mission state.
func (m *Machine) SetState(s State) { m.state = s }

// Odometer returns the cumulative distance travelled in metres.
func (m *Machine) Odometer() float64 { return m.odometer }

// SetPath assigns waypoints and enters the driving state. The slice is
// copied.
func (m *Machine) SetPath(path []geo.Vec) {
	m.path = make([]geo.Vec, len(path))
	copy(m.path, path)
	m.pathIdx = 0
	if len(m.path) > 0 {
		m.state = StateDriving
	}
}

// AtDestination reports whether all waypoints are consumed.
func (m *Machine) AtDestination() bool { return m.pathIdx >= len(m.path) }

// Destination returns the final waypoint, if any.
func (m *Machine) Destination() (geo.Vec, bool) {
	if len(m.path) == 0 {
		return geo.Vec{}, false
	}
	return m.path[len(m.path)-1], true
}

// SetStop latches (or clears) a named stop reason.
func (m *Machine) SetStop(reason string, on bool) {
	was := m.Stopped()
	if on {
		m.stops[reason] = true
	} else {
		delete(m.stops, reason)
	}
	if !was && m.Stopped() {
		m.stopTransitions++
	}
}

// SetSlow latches (or clears) a named speed-degradation reason.
func (m *Machine) SetSlow(reason string, on bool) {
	if on {
		m.slow[reason] = true
	} else {
		delete(m.slow, reason)
	}
}

// Stopped reports whether any stop latch is set.
func (m *Machine) Stopped() bool { return len(m.stops) > 0 }

// StopReasons returns the active stop latches, sorted.
func (m *Machine) StopReasons() []string {
	out := make([]string, 0, len(m.stops))
	for r := range m.stops {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// StopTransitions returns how many times the machine entered the stopped
// state (an E1/E5 safety KPI).
func (m *Machine) StopTransitions() int { return m.stopTransitions }

// StoppedDuration returns the cumulative time spent stopped while having a
// path to follow.
func (m *Machine) StoppedDuration() time.Duration { return m.stoppedFor }

// EffectiveSpeed returns the commanded speed under the current latches.
func (m *Machine) EffectiveSpeed() float64 {
	if m.Stopped() {
		return 0
	}
	if len(m.slow) > 0 {
		return m.SlowSpeedMPS
	}
	return m.MaxSpeedMPS
}

// Tick advances the machine by dt along its path. It returns the distance
// moved.
func (m *Machine) Tick(dt time.Duration) float64 {
	if m.state != StateDriving || m.AtDestination() {
		return 0
	}
	if m.Stopped() {
		m.stoppedFor += dt
		return 0
	}
	speed := m.EffectiveSpeed()
	budget := speed * dt.Seconds()
	var moved float64
	for budget > 0 && !m.AtDestination() {
		wp := m.path[m.pathIdx]
		d := m.Pose.Pos.Dist(wp)
		if d <= budget {
			m.Pose.Pos = wp
			m.pathIdx++
			budget -= d
			moved += d
			continue
		}
		dir := wp.Sub(m.Pose.Pos).Norm()
		m.Pose.Pos = m.Pose.Pos.Add(dir.Scale(budget))
		m.Pose.Heading = dir.Angle()
		moved += budget
		budget = 0
	}
	m.odometer += moved
	if m.AtDestination() {
		m.state = StateIdle
	}
	return moved
}

// Watchdog is a deadline monitor for safety-relevant heartbeats (coordinator
// liveness, drone observation feed). Expiry drives a fail-safe stop latch —
// the "safe state on communication loss" behaviour machinery safety requires.
type Watchdog struct {
	Timeout time.Duration

	last    time.Duration
	started bool
}

// NewWatchdog creates a watchdog with the given timeout.
func NewWatchdog(timeout time.Duration) *Watchdog { return &Watchdog{Timeout: timeout} }

// Beat records a heartbeat at virtual time now.
func (w *Watchdog) Beat(now time.Duration) {
	w.last = now
	w.started = true
}

// Expired reports whether the heartbeat deadline has passed. An un-started
// watchdog is not expired (grace period until first beat).
func (w *Watchdog) Expired(now time.Duration) bool {
	return w.started && now-w.last > w.Timeout
}
