package machine

import (
	"math"
	"testing"
	"time"

	"repro/internal/geo"
)

func TestKindDefaults(t *testing.T) {
	fw := New("fw", KindForwarder, geo.Pose{})
	dr := New("dr", KindDrone, geo.Pose{})
	if fw.MaxSpeedMPS >= dr.MaxSpeedMPS {
		t.Fatal("drone should be faster than forwarder")
	}
	if fw.State() != StateIdle {
		t.Fatalf("initial state = %v, want idle", fw.State())
	}
}

func TestTickFollowsPath(t *testing.T) {
	m := New("fw", KindForwarder, geo.Pose{Pos: geo.V(0, 0)})
	m.SetPath([]geo.Vec{geo.V(10, 0), geo.V(10, 10)})
	if m.State() != StateDriving {
		t.Fatal("SetPath must enter driving state")
	}
	total := 0.0
	for i := 0; i < 100 && !m.AtDestination(); i++ {
		total += m.Tick(time.Second)
	}
	if !m.AtDestination() {
		t.Fatal("never reached destination")
	}
	if m.Pose.Pos.Dist(geo.V(10, 10)) > 1e-9 {
		t.Fatalf("final pos = %v", m.Pose.Pos)
	}
	if math.Abs(total-20) > 1e-9 {
		t.Fatalf("distance = %v, want 20", total)
	}
	if m.State() != StateIdle {
		t.Fatalf("state after arrival = %v, want idle", m.State())
	}
	if math.Abs(m.Odometer()-20) > 1e-9 {
		t.Fatalf("odometer = %v, want 20", m.Odometer())
	}
}

func TestTickConsumesMultipleWaypointsInOneStep(t *testing.T) {
	m := New("fw", KindForwarder, geo.Pose{Pos: geo.V(0, 0)})
	m.SetPath([]geo.Vec{geo.V(1, 0), geo.V(2, 0), geo.V(3, 0)})
	m.Tick(10 * time.Second) // 45 m budget >> 3 m path
	if !m.AtDestination() {
		t.Fatal("long tick did not consume path")
	}
}

func TestStopLatchesHaltMotion(t *testing.T) {
	m := New("fw", KindForwarder, geo.Pose{Pos: geo.V(0, 0)})
	m.SetPath([]geo.Vec{geo.V(100, 0)})
	m.SetStop(StopReasonPerson, true)
	if moved := m.Tick(time.Second); moved != 0 {
		t.Fatalf("moved %v while stopped", moved)
	}
	if m.EffectiveSpeed() != 0 {
		t.Fatal("effective speed nonzero while stopped")
	}
	if m.StoppedDuration() != time.Second {
		t.Fatalf("stopped duration = %v", m.StoppedDuration())
	}
	m.SetStop(StopReasonPerson, false)
	if moved := m.Tick(time.Second); moved == 0 {
		t.Fatal("did not move after stop release")
	}
}

func TestMultipleStopReasonsORed(t *testing.T) {
	m := New("fw", KindForwarder, geo.Pose{})
	m.SetStop(StopReasonPerson, true)
	m.SetStop(StopReasonComms, true)
	m.SetStop(StopReasonPerson, false)
	if !m.Stopped() {
		t.Fatal("machine moved with one latch still set")
	}
	reasons := m.StopReasons()
	if len(reasons) != 1 || reasons[0] != StopReasonComms {
		t.Fatalf("reasons = %v", reasons)
	}
	m.SetStop(StopReasonComms, false)
	if m.Stopped() {
		t.Fatal("stopped with no latches")
	}
}

func TestStopTransitionsCounted(t *testing.T) {
	m := New("fw", KindForwarder, geo.Pose{})
	m.SetStop("a", true)
	m.SetStop("b", true) // still one stop episode
	m.SetStop("a", false)
	m.SetStop("b", false)
	m.SetStop("a", true) // second episode
	if m.StopTransitions() != 2 {
		t.Fatalf("transitions = %d, want 2", m.StopTransitions())
	}
}

func TestSlowMode(t *testing.T) {
	m := New("fw", KindForwarder, geo.Pose{})
	m.SetSlow("warning-field", true)
	if m.EffectiveSpeed() != m.SlowSpeedMPS {
		t.Fatalf("speed = %v, want slow %v", m.EffectiveSpeed(), m.SlowSpeedMPS)
	}
	m.SetSlow("warning-field", false)
	if m.EffectiveSpeed() != m.MaxSpeedMPS {
		t.Fatalf("speed = %v, want max", m.EffectiveSpeed())
	}
}

func TestWatchdog(t *testing.T) {
	w := NewWatchdog(3 * time.Second)
	if w.Expired(10 * time.Second) {
		t.Fatal("un-started watchdog expired")
	}
	w.Beat(10 * time.Second)
	if w.Expired(12 * time.Second) {
		t.Fatal("expired within timeout")
	}
	if !w.Expired(14 * time.Second) {
		t.Fatal("not expired after timeout")
	}
	w.Beat(14 * time.Second)
	if w.Expired(15 * time.Second) {
		t.Fatal("expired right after beat")
	}
}

func TestSafetyControllerProtectiveStop(t *testing.T) {
	m := New("fw", KindForwarder, geo.Pose{Pos: geo.V(0, 0)})
	sc := NewSafetyController(m)
	d := sc.Assess(0, []geo.Vec{geo.V(3, 0)}) // inside protective radius 6
	if d != FieldProtective {
		t.Fatalf("decision = %v, want protective", d)
	}
	if !m.Stopped() {
		t.Fatal("machine not stopped on protective breach")
	}
	if sc.BreachCount() != 1 {
		t.Fatalf("breaches = %d, want 1", sc.BreachCount())
	}
}

func TestSafetyControllerWarningSlows(t *testing.T) {
	m := New("fw", KindForwarder, geo.Pose{Pos: geo.V(0, 0)})
	sc := NewSafetyController(m)
	d := sc.Assess(0, []geo.Vec{geo.V(9, 0)}) // warning ring (6, 12]
	if d != FieldWarning {
		t.Fatalf("decision = %v, want warning", d)
	}
	if m.Stopped() {
		t.Fatal("warning field must not stop")
	}
	if m.EffectiveSpeed() != m.SlowSpeedMPS {
		t.Fatal("warning field must slow")
	}
}

func TestSafetyControllerHoldTime(t *testing.T) {
	m := New("fw", KindForwarder, geo.Pose{Pos: geo.V(0, 0)})
	sc := NewSafetyController(m)
	sc.Assess(0, []geo.Vec{geo.V(3, 0)})
	// Field clears, but within hold time the stop must persist.
	sc.Assess(time.Second, nil)
	if !m.Stopped() {
		t.Fatal("stop released before hold time")
	}
	sc.Assess(5*time.Second, nil)
	if m.Stopped() {
		t.Fatal("stop held past hold time with clear field")
	}
}

func TestSafetyControllerRepeatedBreachesCount(t *testing.T) {
	m := New("fw", KindForwarder, geo.Pose{Pos: geo.V(0, 0)})
	sc := NewSafetyController(m)
	sc.Assess(0, []geo.Vec{geo.V(3, 0)})
	sc.Assess(10*time.Second, nil) // release
	sc.Assess(20*time.Second, []geo.Vec{geo.V(2, 0)})
	if sc.BreachCount() != 2 {
		t.Fatalf("breaches = %d, want 2", sc.BreachCount())
	}
}

func TestSafetyControllerClearKeepsMoving(t *testing.T) {
	m := New("fw", KindForwarder, geo.Pose{Pos: geo.V(0, 0)})
	sc := NewSafetyController(m)
	if d := sc.Assess(0, []geo.Vec{geo.V(50, 50)}); d != FieldClear {
		t.Fatalf("decision = %v, want clear", d)
	}
	if m.Stopped() || m.EffectiveSpeed() != m.MaxSpeedMPS {
		t.Fatal("clear field affected motion")
	}
}

func TestDestination(t *testing.T) {
	m := New("fw", KindForwarder, geo.Pose{})
	if _, ok := m.Destination(); ok {
		t.Fatal("destination on empty path")
	}
	m.SetPath([]geo.Vec{geo.V(1, 1), geo.V(2, 2)})
	d, ok := m.Destination()
	if !ok || d != geo.V(2, 2) {
		t.Fatalf("destination = %v/%v", d, ok)
	}
}
