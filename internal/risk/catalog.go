package risk

import "sort"

// Characteristic is one forestry-domain cybersecurity characteristic from
// the paper's Table I. The catalog is machine-readable so benches regenerate
// the table from the model instead of hard-coding prose, and so threats and
// controls can be cross-referenced per characteristic.
type Characteristic struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Description string `json:"description"`
}

// Table I characteristic IDs.
const (
	CharRemoteIsolated  = "C1"
	CharAutonomous      = "C2"
	CharNaturalDisaster = "C3"
	CharDataPrivacy     = "C4"
	CharRemoteMonitor   = "C5"
	CharThreatProfile   = "C6"
	CharConfidentiality = "C7"
	CharHeavyMachinery  = "C8"
)

// TableI returns the eight forestry-specific characteristics exactly as the
// paper's Table I identifies them (descriptions abridged to one sentence).
func TableI() []Characteristic {
	return []Characteristic{
		{CharRemoteIsolated, "Remote and Isolated Locations",
			"Operations occur in remote areas with limited connectivity; secure communication and data protection are hard to ensure."},
		{CharAutonomous, "Autonomous Machinery",
			"Drones and robots must be secured against unauthorized access or interference."},
		{CharNaturalDisaster, "Natural Disasters",
			"Wildfires, floods and storms demand disaster recovery and continuity planning for cybersecurity."},
		{CharDataPrivacy, "Data Privacy and Compliance",
			"Land-ownership and environmental data require privacy protection and regulatory compliance."},
		{CharRemoteMonitor, "Remote Monitoring and Control",
			"Remote equipment management systems must be secured against unauthorized access and disruption."},
		{CharThreatProfile, "Threat Profile",
			"Forestry organisations need explicit threat profiles covering threats, agents and controls."},
		{CharConfidentiality, "Confidentiality of Operations",
			"Some operations (e.g. military sites) require confidential operations and communications."},
		{CharHeavyMachinery, "Heavy Machinery",
			"Heavy harvesting machines raise safety risk, and with it the stakes of safety-compromising cyber threats."},
	}
}

// CharacteristicCoverage cross-references a characteristic with the threat
// scenarios touching it and the controls mitigating those threats.
type CharacteristicCoverage struct {
	Characteristic Characteristic `json:"characteristic"`
	ThreatIDs      []string       `json:"threatIds"`
	ControlIDs     []string       `json:"controlIds"`
}

// CoverageByCharacteristic builds the Table-I coverage matrix from a model:
// which threats touch each characteristic and which controls cover those
// threats.
func CoverageByCharacteristic(m *Model) []CharacteristicCoverage {
	controlsByThreat := make(map[string][]string)
	for _, c := range m.Controls {
		for _, th := range c.Covers {
			controlsByThreat[th] = append(controlsByThreat[th], c.ID)
		}
	}
	out := make([]CharacteristicCoverage, 0, 8)
	for _, ch := range TableI() {
		cov := CharacteristicCoverage{Characteristic: ch}
		ctrlSet := make(map[string]bool)
		for _, t := range m.Threats {
			for _, cid := range t.Characteristics {
				if cid != ch.ID {
					continue
				}
				cov.ThreatIDs = append(cov.ThreatIDs, t.ID)
				for _, ctrl := range controlsByThreat[t.ID] {
					ctrlSet[ctrl] = true
				}
			}
		}
		for ctrl := range ctrlSet {
			cov.ControlIDs = append(cov.ControlIDs, ctrl)
		}
		sort.Strings(cov.ThreatIDs)
		sort.Strings(cov.ControlIDs)
		out = append(out, cov)
	}
	return out
}

// Knowledge-transfer domains (paper Fig. 3 / Section IV-C).
const (
	DomainForestry   = "forestry"
	DomainMining     = "mining"
	DomainAutomotive = "automotive"
)

// TransferReport is the outcome of the Fig. 3 knowledge-transfer step: how
// many threat scenarios each source domain contributes and whether every
// Table-I characteristic ends up covered.
type TransferReport struct {
	ByDomain       map[string]int           `json:"byDomain"`
	Coverage       []CharacteristicCoverage `json:"coverage"`
	UncoveredChars []string                 `json:"uncoveredChars,omitempty"`
	FullyCovered   bool                     `json:"fullyCovered"`
}

// TransferKnowledge evaluates the knowledge-transfer claim on a model: the
// forestry threat profile is assembled from mining and automotive threat
// literature plus forestry-native scenarios, and must cover all Table-I
// characteristics.
func TransferKnowledge(m *Model) TransferReport {
	rep := TransferReport{ByDomain: make(map[string]int)}
	for _, t := range m.Threats {
		d := t.Domain
		if d == "" {
			d = DomainForestry
		}
		rep.ByDomain[d]++
	}
	rep.Coverage = CoverageByCharacteristic(m)
	for _, cov := range rep.Coverage {
		if len(cov.ThreatIDs) == 0 {
			rep.UncoveredChars = append(rep.UncoveredChars, cov.Characteristic.ID)
		}
	}
	rep.FullyCovered = len(rep.UncoveredChars) == 0
	return rep
}
