package risk

import (
	"testing"
	"testing/quick"
)

func TestImpactOverall(t *testing.T) {
	im := Impact{Safety: ImpactNegligible, Financial: ImpactMajor, Operational: ImpactModerate, Privacy: ImpactNegligible}
	if im.Overall() != ImpactMajor {
		t.Fatalf("overall = %v, want major", im.Overall())
	}
	if (Impact{}).Overall() != ImpactNegligible {
		t.Fatal("zero impact must default to negligible")
	}
}

func TestAttackPotentialRating(t *testing.T) {
	tests := []struct {
		sum  AttackPotential
		want FeasibilityRating
	}{
		{AttackPotential{ElapsedTime: 1, Expertise: 3}, FeasibilityHigh},            // 4
		{AttackPotential{ElapsedTime: 10, Expertise: 6}, FeasibilityMedium},         // 16
		{AttackPotential{ElapsedTime: 10, Expertise: 6, Window: 4}, FeasibilityLow}, // 20
		{AttackPotential{ElapsedTime: 17, Expertise: 8, Knowledge: 7}, FeasibilityVeryLow},
	}
	for _, tt := range tests {
		if got := tt.sum.Rating(); got != tt.want {
			t.Fatalf("rating(%d) = %v, want %v", tt.sum.Sum(), got, tt.want)
		}
	}
}

func TestRiskValueMatrixProperties(t *testing.T) {
	// Monotone in both impact and feasibility; bounded 1..5.
	for i := ImpactNegligible; i <= ImpactSevere; i++ {
		for f := FeasibilityVeryLow; f <= FeasibilityHigh; f++ {
			rv := RiskValue(i, f)
			if rv < 1 || rv > 5 {
				t.Fatalf("risk value %d out of range", rv)
			}
			if f > FeasibilityVeryLow && RiskValue(i, f-1) > rv {
				t.Fatal("risk not monotone in feasibility")
			}
			if i > ImpactNegligible && RiskValue(i-1, f) > rv {
				t.Fatal("risk not monotone in impact")
			}
		}
	}
	if RiskValue(ImpactSevere, FeasibilityHigh) != 5 {
		t.Fatal("severe+high must be 5")
	}
	if RiskValue(ImpactNegligible, FeasibilityVeryLow) != 1 {
		t.Fatal("negligible+very-low must be 1")
	}
}

func TestCALDetermination(t *testing.T) {
	if got := DetermineCAL(ImpactSevere, VectorNetwork); got != CAL4 {
		t.Fatalf("severe/network = %v, want CAL4", got)
	}
	if got := DetermineCAL(ImpactNegligible, VectorPhysical); got != CALNone {
		t.Fatalf("negligible/physical = %v, want none", got)
	}
	// Monotone in vector exposure.
	for i := ImpactNegligible; i <= ImpactSevere; i++ {
		for v := VectorLocal; v <= VectorNetwork; v++ {
			if DetermineCAL(i, v-1) > DetermineCAL(i, v) {
				t.Fatal("CAL not monotone in vector")
			}
		}
	}
}

func TestRequiredPLRiskGraph(t *testing.T) {
	tests := []struct {
		s    SeverityParam
		f    FrequencyParam
		p    AvoidanceParam
		want PL
	}{
		{S1, F1, P1, PLa},
		{S1, F1, P2, PLb},
		{S1, F2, P1, PLb},
		{S1, F2, P2, PLc},
		{S2, F1, P1, PLc},
		{S2, F1, P2, PLd},
		{S2, F2, P1, PLd},
		{S2, F2, P2, PLe},
	}
	for _, tt := range tests {
		if got := RequiredPL(tt.s, tt.f, tt.p); got != tt.want {
			t.Fatalf("RequiredPL(%v,%v,%v) = %v, want %v", tt.s, tt.f, tt.p, got, tt.want)
		}
	}
}

func TestAchievedPL(t *testing.T) {
	if pl, ok := AchievedPL(Cat4, MTTFdHigh, DCHigh); !ok || pl != PLe {
		t.Fatalf("Cat4/high/high = %v/%v, want PLe", pl, ok)
	}
	if _, ok := AchievedPL(Cat3, MTTFdHigh, DCNone); ok {
		t.Fatal("Cat3 without diagnostics must be invalid")
	}
	if _, ok := AchievedPL(CatB, MTTFdHigh, DCHigh); ok {
		t.Fatal("CatB with diagnostics must be invalid")
	}
	if pl, ok := AchievedPL(Cat3, MTTFdHigh, DCMedium); !ok || pl != PLd {
		t.Fatalf("Cat3/high/medium = %v, want PLd", pl)
	}
}

func TestSLVectorGap(t *testing.T) {
	target := NewSLVector(3, 2, 3, 2, 2, 2, 2)
	achieved := NewSLVector(3, 2, 2, 2, 0, 2, 2)
	gaps := achieved.Gap(target)
	if len(gaps) != 2 {
		t.Fatalf("gaps = %v, want FR3 and FR5", gaps)
	}
	if achieved.Meets(target) {
		t.Fatal("Meets with gaps")
	}
	if !target.Meets(target) {
		t.Fatal("vector must meet itself")
	}
}

func TestUseCaseModelValidates(t *testing.T) {
	uc := BuildUseCase()
	if err := uc.Model.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(uc.Model.Threats) < 10 {
		t.Fatalf("threats = %d, want a substantive model", len(uc.Model.Threats))
	}
}

func TestAssessUntreatedHasCriticalRisks(t *testing.T) {
	uc := BuildUseCase()
	reg, err := uc.Model.Assess(nil)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	if len(reg) != len(uc.Model.Threats) {
		t.Fatalf("register rows = %d, want %d", len(reg), len(uc.Model.Threats))
	}
	// Sorted descending.
	for i := 1; i < len(reg); i++ {
		if reg[i].RiskValue > reg[i-1].RiskValue {
			t.Fatal("register not sorted by risk")
		}
	}
	if reg[0].RiskValue < 4 {
		t.Fatalf("top untreated risk = %d, want >= 4 (injection against safety)", reg[0].RiskValue)
	}
}

func TestTreatmentReducesRisk(t *testing.T) {
	uc := BuildUseCase()
	before, err := uc.Model.Assess(nil)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	after, err := uc.Model.Assess(uc.FullControls())
	if err != nil {
		t.Fatalf("Assess treated: %v", err)
	}
	sum := func(reg []AssessedRisk) int {
		total := 0
		for _, r := range reg {
			total += r.RiskValue
		}
		return total
	}
	if sum(after) >= sum(before) {
		t.Fatalf("treatment did not reduce total risk: %d -> %d", sum(before), sum(after))
	}
	// Every threat with an implemented control must improve or hold.
	byID := make(map[string]AssessedRisk)
	for _, r := range before {
		byID[r.Scenario.ID] = r
	}
	for _, r := range after {
		if r.RiskValue > byID[r.Scenario.ID].RiskValue {
			t.Fatalf("threat %s got riskier under treatment", r.Scenario.ID)
		}
	}
}

func TestAssessUnknownControl(t *testing.T) {
	uc := BuildUseCase()
	if _, err := uc.Model.Assess([]string{"CTRL-NONEXISTENT"}); err == nil {
		t.Fatal("want error for unknown control")
	}
}

func TestModelValidationCatchesDangles(t *testing.T) {
	m := Model{
		Assets:  []Asset{{ID: "A"}},
		Damages: []DamageScenario{{ID: "D"}},
		Threats: []ThreatScenario{{ID: "T", AssetID: "GHOST", DamageID: "D"}},
	}
	if err := m.Validate(); err == nil {
		t.Fatal("want error for dangling asset reference")
	}
	m.Threats[0].AssetID = "A"
	m.Threats[0].DamageID = "GHOST"
	if err := m.Validate(); err == nil {
		t.Fatal("want error for dangling damage reference")
	}
}

func TestAchievedSLAndArchitecture(t *testing.T) {
	uc := BuildUseCase()
	none := AchievedSL(&uc.Model, nil)
	for _, fr := range AllFRs() {
		if none[fr] != 0 {
			t.Fatalf("no controls but achieved %v on %v", none[fr], fr)
		}
	}
	full := AchievedSL(&uc.Model, uc.FullControls())
	if full[FR1IAC] < 3 || full[FR3SI] < 3 {
		t.Fatalf("full stack SLs = %v, want FR1>=3, FR3>=3", full)
	}
	unmet := 0
	for _, za := range AssessArchitecture(uc.Architecture, full) {
		if !za.Met {
			unmet++
		}
	}
	if unmet != 0 {
		t.Fatalf("%d zones/conduits unmet with full controls", unmet)
	}
	unmetBare := 0
	for _, za := range AssessArchitecture(uc.Architecture, none) {
		if !za.Met {
			unmetBare++
		}
	}
	if unmetBare == 0 {
		t.Fatal("bare site meets all targets (targets too weak)")
	}
}

func TestInterplayDegradation(t *testing.T) {
	uc := BuildUseCase()
	untreated, err := uc.Model.Assess(nil)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	res, err := AnalyzeInterplay(uc.SafetyFunctions, untreated)
	if err != nil {
		t.Fatalf("AnalyzeInterplay: %v", err)
	}
	sum := Summarize(res)
	if sum.Degraded == 0 {
		t.Fatal("untreated security risk degraded no safety function")
	}
	if sum.FailedByCyber == 0 {
		t.Fatal("expected at least one function failing PLr purely due to cyber risk")
	}

	treated, err := uc.Model.Assess(uc.FullControls())
	if err != nil {
		t.Fatalf("Assess treated: %v", err)
	}
	resT, err := AnalyzeInterplay(uc.SafetyFunctions, treated)
	if err != nil {
		t.Fatalf("AnalyzeInterplay treated: %v", err)
	}
	sumT := Summarize(resT)
	if sumT.Meeting <= sum.Meeting {
		t.Fatalf("treatment did not improve functions meeting PLr: %d -> %d", sum.Meeting, sumT.Meeting)
	}
	if sumT.Meeting != len(uc.SafetyFunctions) {
		t.Fatalf("treated stack: %d/%d functions meet PLr", sumT.Meeting, len(uc.SafetyFunctions))
	}
}

func TestInterplayInvalidArchitecture(t *testing.T) {
	bad := []SafetyFunction{{
		ID: "SF-BAD", RequiredPL: PLc, Category: Cat3, MTTFd: MTTFdHigh, DC: DCNone,
	}}
	if _, err := AnalyzeInterplay(bad, nil); err == nil {
		t.Fatal("want error for invalid category/DC combination")
	}
}

func TestTableIComplete(t *testing.T) {
	chars := TableI()
	if len(chars) != 8 {
		t.Fatalf("Table I rows = %d, want 8", len(chars))
	}
	seen := make(map[string]bool)
	for _, c := range chars {
		if c.ID == "" || c.Name == "" || c.Description == "" {
			t.Fatalf("incomplete characteristic %+v", c)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate characteristic %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestKnowledgeTransferCoversTableI(t *testing.T) {
	uc := BuildUseCase()
	rep := TransferKnowledge(&uc.Model)
	if !rep.FullyCovered {
		t.Fatalf("uncovered characteristics: %v", rep.UncoveredChars)
	}
	if rep.ByDomain[DomainMining] == 0 || rep.ByDomain[DomainAutomotive] == 0 {
		t.Fatalf("transfer domains = %v, want mining and automotive contributions", rep.ByDomain)
	}
	if rep.ByDomain[DomainForestry] == 0 {
		t.Fatal("no forestry-native scenarios")
	}
}

func TestCoverageLinksControls(t *testing.T) {
	uc := BuildUseCase()
	for _, cov := range CoverageByCharacteristic(&uc.Model) {
		if len(cov.ThreatIDs) > 0 && len(cov.ControlIDs) == 0 {
			t.Fatalf("characteristic %s has threats but no controls", cov.Characteristic.ID)
		}
	}
}

func TestPropertyControlsNeverIncreaseFeasibility(t *testing.T) {
	f := func(et, ex, kn, wi, eq uint8) bool {
		base := AttackPotential{
			ElapsedTime: int(et % 20), Expertise: int(ex % 9),
			Knowledge: int(kn % 12), Window: int(wi % 11), Equipment: int(eq % 10),
		}
		withCtrl := base
		withCtrl.Expertise += 3
		withCtrl.Equipment += 4
		return withCtrl.Rating() <= base.Rating()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDegradePLBounded(t *testing.T) {
	f := func(pl, rv uint8) bool {
		designed := PL(int(pl%5) + 1)
		risk := int(rv % 7)
		out := degradePL(designed, risk)
		return out >= PLa && out <= designed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
