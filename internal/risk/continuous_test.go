package risk

import (
	"testing"
	"time"
)

func newAssessor(t *testing.T) *ContinuousAssessor {
	t.Helper()
	uc := BuildUseCase()
	a, err := NewContinuousAssessor(&uc.Model, uc.FullControls())
	if err != nil {
		t.Fatalf("NewContinuousAssessor: %v", err)
	}
	return a
}

func TestContinuousBaselineMatchesTreatedRegister(t *testing.T) {
	a := newAssessor(t)
	cur := a.Current(0)
	maxRisk := 0
	for _, r := range cur {
		if r.RiskValue > maxRisk {
			maxRisk = r.RiskValue
		}
	}
	if maxRisk >= 4 {
		t.Fatalf("treated baseline max risk = %d", maxRisk)
	}
	if len(a.Escalated(0)) != 0 {
		t.Fatalf("escalations without observations: %v", a.Escalated(0))
	}
}

func TestObservationEscalates(t *testing.T) {
	a := newAssessor(t)
	a.ObserveAttack("gnss-spoof", 10*time.Minute)
	esc := a.Escalated(11 * time.Minute)
	if len(esc) != 1 || esc[0] != "T-GNSS-SPOOF" {
		t.Fatalf("escalated = %v, want [T-GNSS-SPOOF]", esc)
	}
	for _, r := range a.Current(11 * time.Minute) {
		if r.Scenario.ID == "T-GNSS-SPOOF" {
			if r.Feasibility != FeasibilityHigh {
				t.Fatalf("observed scenario feasibility = %v, want high", r.Feasibility)
			}
			if r.RiskValue < 3 {
				t.Fatalf("observed scenario risk = %d, want escalated", r.RiskValue)
			}
		}
	}
}

func TestObservationDecays(t *testing.T) {
	a := newAssessor(t)
	a.DecayAfter = 5 * time.Minute
	a.ObserveAttack("deauth-flood", time.Minute)
	if len(a.Escalated(2*time.Minute)) == 0 {
		t.Fatal("fresh observation not escalated")
	}
	if len(a.Escalated(10*time.Minute)) != 0 {
		t.Fatalf("stale observation still escalated: %v", a.Escalated(10*time.Minute))
	}
}

func TestUnknownClassIgnored(t *testing.T) {
	a := newAssessor(t)
	a.ObserveAttack("quantum-hax", time.Minute)
	if len(a.Escalated(time.Minute)) != 0 {
		t.Fatal("unknown attack class escalated something")
	}
}

func TestObserveAlertTypeMapping(t *testing.T) {
	a := newAssessor(t)
	a.ObserveAlertType("gnss-anomaly", time.Minute)
	found := false
	for _, id := range a.Escalated(time.Minute) {
		if id == "T-GNSS-SPOOF" {
			found = true
		}
	}
	if !found {
		t.Fatal("gnss-anomaly alert did not escalate the spoofing scenario")
	}
	// Unknown alert types are ignored.
	before := len(a.Escalated(time.Minute))
	a.ObserveAlertType("made-up-alert", time.Minute)
	if len(a.Escalated(time.Minute)) != before {
		t.Fatal("unknown alert type changed the register")
	}
}

func TestRecommendModeEscalation(t *testing.T) {
	a := newAssessor(t)
	if m := RecommendMode(a.Current(0)); m != ModeNormal {
		t.Fatalf("baseline mode = %v, want normal", m)
	}
	// Observing the injection attack (safety-severe damage) demands a stop.
	a.ObserveAttack("command-injection", time.Minute)
	if m := RecommendMode(a.Current(time.Minute)); m != ModeSafeStop {
		t.Fatalf("mode after observed injection = %v, want safe-stop", m)
	}
	// After decay, normal operation resumes.
	if m := RecommendMode(a.Current(2 * time.Hour)); m != ModeNormal {
		t.Fatalf("mode after decay = %v, want normal", m)
	}
}

func TestRecommendModeRestricted(t *testing.T) {
	reg := []AssessedRisk{{
		Damage:    DamageScenario{Impact: Impact{Safety: ImpactMajor}},
		RiskValue: 3,
	}}
	if m := RecommendMode(reg); m != ModeRestricted {
		t.Fatalf("mode = %v, want restricted", m)
	}
	// Non-safety risks never restrict operations.
	reg[0].Damage.Impact = Impact{Privacy: ImpactSevere}
	reg[0].RiskValue = 5
	if m := RecommendMode(reg); m != ModeNormal {
		t.Fatalf("privacy risk mode = %v, want normal", m)
	}
}

func TestContinuousRegisterSorted(t *testing.T) {
	a := newAssessor(t)
	a.ObserveAttack("rf-jamming", time.Minute)
	cur := a.Current(time.Minute)
	for i := 1; i < len(cur); i++ {
		if cur[i].RiskValue > cur[i-1].RiskValue {
			t.Fatal("live register not sorted")
		}
	}
}
