package risk

import "fmt"

// PL is an ISO 13849-1 performance level for a safety function.
type PL int

// Performance levels a (lowest) through e (highest).
const (
	PLa PL = iota + 1
	PLb
	PLc
	PLd
	PLe
)

// String returns the standard lowercase PL letter.
func (p PL) String() string {
	switch p {
	case PLa:
		return "PL a"
	case PLb:
		return "PL b"
	case PLc:
		return "PL c"
	case PLd:
		return "PL d"
	case PLe:
		return "PL e"
	default:
		return fmt.Sprintf("PL(%d)", int(p))
	}
}

// Risk-graph parameters (ISO 13849-1 Annex A).
type (
	// SeverityParam is S1 (slight) or S2 (serious, usually irreversible).
	SeverityParam int
	// FrequencyParam is F1 (seldom/short exposure) or F2 (frequent/long).
	FrequencyParam int
	// AvoidanceParam is P1 (possible under specific conditions) or P2
	// (scarcely possible).
	AvoidanceParam int
)

// Risk-graph parameter values.
const (
	S1 SeverityParam = iota + 1
	S2
)
const (
	F1 FrequencyParam = iota + 1
	F2
)
const (
	P1 AvoidanceParam = iota + 1
	P2
)

// RequiredPL walks the ISO 13849-1 risk graph.
func RequiredPL(s SeverityParam, f FrequencyParam, p AvoidanceParam) PL {
	if s == S1 {
		if f == F1 {
			if p == P1 {
				return PLa
			}
			return PLb
		}
		if p == P1 {
			return PLb
		}
		return PLc
	}
	// S2
	if f == F1 {
		if p == P1 {
			return PLc
		}
		return PLd
	}
	if p == P1 {
		return PLd
	}
	return PLe
}

// Category is the ISO 13849-1 designated architecture category.
type Category int

// Categories.
const (
	CatB Category = iota + 1
	Cat1
	Cat2
	Cat3
	Cat4
)

// String returns the category label.
func (c Category) String() string {
	switch c {
	case CatB:
		return "Cat B"
	case Cat1:
		return "Cat 1"
	case Cat2:
		return "Cat 2"
	case Cat3:
		return "Cat 3"
	case Cat4:
		return "Cat 4"
	default:
		return fmt.Sprintf("Cat(%d)", int(c))
	}
}

// MTTFdBand bands the mean time to dangerous failure per channel.
type MTTFdBand int

// MTTFd bands.
const (
	MTTFdLow    MTTFdBand = iota + 1 // 3..10 years
	MTTFdMedium                      // 10..30 years
	MTTFdHigh                        // 30..100 years
)

// DCBand bands the diagnostic coverage.
type DCBand int

// DC bands.
const (
	DCNone   DCBand = iota + 1 // < 60%
	DCLow                      // 60..90%
	DCMedium                   // 90..99%
	DCHigh                     // >= 99%
)

// AchievedPL follows the simplified ISO 13849-1 §4.5.4 (Figure 5 / Annex K)
// relationship between category, DC and MTTFd. Invalid combinations (e.g.
// Cat 3 without diagnostics) return false.
func AchievedPL(cat Category, mttfd MTTFdBand, dc DCBand) (PL, bool) {
	switch cat {
	case CatB:
		if dc != DCNone {
			return 0, false
		}
		switch mttfd {
		case MTTFdLow:
			return PLa, true
		case MTTFdMedium:
			return PLb, true
		default:
			return PLb, true
		}
	case Cat1:
		if dc != DCNone {
			return 0, false
		}
		if mttfd == MTTFdHigh {
			return PLc, true
		}
		return PLb, true
	case Cat2:
		if dc == DCNone {
			return 0, false
		}
		base := PLb
		if mttfd == MTTFdMedium {
			base = PLc
		}
		if mttfd == MTTFdHigh {
			base = PLd
		}
		if dc == DCLow && base == PLd {
			base = PLc
		}
		return base, true
	case Cat3:
		if dc == DCNone {
			return 0, false
		}
		switch mttfd {
		case MTTFdLow:
			if dc >= DCMedium {
				return PLc, true
			}
			return PLb, true
		case MTTFdMedium:
			if dc >= DCMedium {
				return PLd, true
			}
			return PLc, true
		default:
			return PLd, true
		}
	case Cat4:
		if dc < DCHigh {
			return 0, false
		}
		if mttfd == MTTFdHigh {
			return PLe, true
		}
		return PLd, true
	default:
		return 0, false
	}
}

// SafetyFunction is one safety function of the worksite with its required
// and designed performance levels, and the cyber assets it depends on — the
// dependency edge IEC TS 63074's interplay analysis walks.
type SafetyFunction struct {
	ID         string    `json:"id"`
	Name       string    `json:"name"`
	RequiredPL PL        `json:"requiredPl"`
	Category   Category  `json:"category"`
	MTTFd      MTTFdBand `json:"mttfd"`
	DC         DCBand    `json:"dc"`
	// DependsOnAssets lists risk-model asset IDs whose compromise undermines
	// this function.
	DependsOnAssets []string `json:"dependsOnAssets"`
}

// DesignedPL returns the PL the function achieves absent security
// considerations.
func (sf SafetyFunction) DesignedPL() (PL, bool) {
	return AchievedPL(sf.Category, sf.MTTFd, sf.DC)
}
