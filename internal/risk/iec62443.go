package risk

import (
	"fmt"
	"sort"
)

// FR is one of the seven foundational requirements of IEC 62443-3-3.
type FR int

// Foundational requirements.
const (
	FR1IAC FR = iota + 1 // identification & authentication control
	FR2UC                // use control
	FR3SI                // system integrity
	FR4DC                // data confidentiality
	FR5RDF               // restricted data flow
	FR6TRE               // timely response to events
	FR7RA                // resource availability
)

// String returns the short FR label.
func (f FR) String() string {
	switch f {
	case FR1IAC:
		return "FR1-IAC"
	case FR2UC:
		return "FR2-UC"
	case FR3SI:
		return "FR3-SI"
	case FR4DC:
		return "FR4-DC"
	case FR5RDF:
		return "FR5-RDF"
	case FR6TRE:
		return "FR6-TRE"
	case FR7RA:
		return "FR7-RA"
	default:
		return fmt.Sprintf("FR(%d)", int(f))
	}
}

// AllFRs lists the foundational requirements in order.
func AllFRs() []FR {
	return []FR{FR1IAC, FR2UC, FR3SI, FR4DC, FR5RDF, FR6TRE, FR7RA}
}

// SL is an IEC 62443 security level (0 = none .. 4 = state-sponsored
// adversary).
type SL int

// SLVector assigns a security level per foundational requirement.
type SLVector map[FR]SL

// NewSLVector builds a vector from the seven levels in FR order.
func NewSLVector(levels ...SL) SLVector {
	v := make(SLVector, 7)
	for i, fr := range AllFRs() {
		if i < len(levels) {
			v[fr] = levels[i]
		}
	}
	return v
}

// Meets reports whether v satisfies target on every FR.
func (v SLVector) Meets(target SLVector) bool {
	for _, fr := range AllFRs() {
		if v[fr] < target[fr] {
			return false
		}
	}
	return true
}

// Gap lists the FRs where v falls short of target, with the shortfall.
func (v SLVector) Gap(target SLVector) []FRGap {
	var out []FRGap
	for _, fr := range AllFRs() {
		if v[fr] < target[fr] {
			out = append(out, FRGap{FR: fr, Target: target[fr], Achieved: v[fr]})
		}
	}
	return out
}

// FRGap is one foundational-requirement shortfall.
type FRGap struct {
	FR       FR `json:"fr"`
	Target   SL `json:"target"`
	Achieved SL `json:"achieved"`
}

// Zone is an IEC 62443 security zone: a grouping of assets sharing security
// requirements. The forestry worksite partitions into the machine zone, the
// coordination zone, and the (hostile) open RF environment.
type Zone struct {
	Name     string   `json:"name"`
	AssetIDs []string `json:"assetIds"`
	TargetSL SLVector `json:"targetSl"`
}

// Conduit is a communication path between zones, the unit jamming and
// spoofing attacks target.
type Conduit struct {
	Name     string   `json:"name"`
	FromZone string   `json:"fromZone"`
	ToZone   string   `json:"toZone"`
	TargetSL SLVector `json:"targetSl"`
}

// SiteArchitecture is the zones-and-conduits decomposition.
type SiteArchitecture struct {
	Zones    []Zone    `json:"zones"`
	Conduits []Conduit `json:"conduits"`
}

// AchievedSL computes the site-wide achieved SL vector from the applied
// controls: each FR gets the maximum level any applied control provides
// (controls compose by covering different FRs; within one FR the strongest
// mechanism dominates).
func AchievedSL(model *Model, appliedControls []string) SLVector {
	achieved := make(SLVector, 7)
	for _, id := range appliedControls {
		for _, c := range model.Controls {
			if c.ID != id {
				continue
			}
			for fr, sl := range c.FRLevels {
				if sl > achieved[fr] {
					achieved[fr] = sl
				}
			}
		}
	}
	return achieved
}

// ZoneAssessment is the gap analysis for one zone or conduit.
type ZoneAssessment struct {
	Name     string   `json:"name"`
	Kind     string   `json:"kind"` // zone | conduit
	Target   SLVector `json:"target"`
	Achieved SLVector `json:"achieved"`
	Gaps     []FRGap  `json:"gaps,omitempty"`
	Met      bool     `json:"met"`
}

// AssessArchitecture runs the SL gap analysis over all zones and conduits.
func AssessArchitecture(arch SiteArchitecture, achieved SLVector) []ZoneAssessment {
	out := make([]ZoneAssessment, 0, len(arch.Zones)+len(arch.Conduits))
	for _, z := range arch.Zones {
		gaps := achieved.Gap(z.TargetSL)
		out = append(out, ZoneAssessment{
			Name: z.Name, Kind: "zone",
			Target: z.TargetSL, Achieved: achieved,
			Gaps: gaps, Met: len(gaps) == 0,
		})
	}
	for _, c := range arch.Conduits {
		gaps := achieved.Gap(c.TargetSL)
		out = append(out, ZoneAssessment{
			Name: c.Name, Kind: "conduit",
			Target: c.TargetSL, Achieved: achieved,
			Gaps: gaps, Met: len(gaps) == 0,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
