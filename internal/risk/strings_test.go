package risk

import "testing"

func TestStringers(t *testing.T) {
	tests := []struct {
		got  string
		want string
	}{
		{ImpactNegligible.String(), "negligible"},
		{ImpactSevere.String(), "severe"},
		{ImpactLevel(99).String(), "impact(99)"},
		{FeasibilityVeryLow.String(), "very-low"},
		{FeasibilityHigh.String(), "high"},
		{FeasibilityRating(99).String(), "feasibility(99)"},
		{CALNone.String(), "-"},
		{CAL3.String(), "CAL3"},
		{VectorPhysical.String(), "physical"},
		{VectorNetwork.String(), "network"},
		{AttackVector(99).String(), "vector(99)"},
		{TreatmentAccept.String(), "accept"},
		{TreatmentAvoid.String(), "avoid"},
		{TreatmentShare.String(), "share"},
		{Treatment(99).String(), "treatment(99)"},
		{FR1IAC.String(), "FR1-IAC"},
		{FR7RA.String(), "FR7-RA"},
		{FR(99).String(), "FR(99)"},
		{PLa.String(), "PL a"},
		{PLe.String(), "PL e"},
		{PL(99).String(), "PL(99)"},
		{CatB.String(), "Cat B"},
		{Cat4.String(), "Cat 4"},
		{Category(99).String(), "Cat(99)"},
		{ModeNormal.String(), "normal"},
		{ModeSafeStop.String(), "safe-stop"},
		{OperatingMode(99).String(), "unknown"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Fatalf("got %q, want %q", tt.got, tt.want)
		}
	}
}

func TestRecommendTreatmentBands(t *testing.T) {
	tests := []struct {
		rv   int
		want Treatment
	}{
		{1, TreatmentAccept},
		{2, TreatmentReduce},
		{4, TreatmentReduce},
		{5, TreatmentAvoid},
	}
	for _, tt := range tests {
		if got := RecommendTreatment(tt.rv); got != tt.want {
			t.Fatalf("RecommendTreatment(%d) = %v, want %v", tt.rv, got, tt.want)
		}
	}
}

func TestNewSLVectorShortArgs(t *testing.T) {
	v := NewSLVector(3, 2) // remaining FRs default to 0
	if v[FR1IAC] != 3 || v[FR2UC] != 2 || v[FR3SI] != 0 {
		t.Fatalf("vector = %v", v)
	}
}

func TestDamageLookup(t *testing.T) {
	uc := BuildUseCase()
	if _, ok := uc.Model.Damage("D-COLLISION"); !ok {
		t.Fatal("known damage not found")
	}
	if _, ok := uc.Model.Damage("D-NOPE"); ok {
		t.Fatal("unknown damage found")
	}
}

func TestControlCoversValidation(t *testing.T) {
	m := Model{
		Assets:  []Asset{{ID: "A"}},
		Damages: []DamageScenario{{ID: "D"}},
		Threats: []ThreatScenario{{ID: "T", AssetID: "A", DamageID: "D"}},
		Controls: []Control{
			{ID: "C", Covers: []string{"GHOST"}},
		},
	}
	if err := m.Validate(); err == nil {
		t.Fatal("control covering unknown threat accepted")
	}
}

func TestDuplicateIDsRejected(t *testing.T) {
	m := Model{Assets: []Asset{{ID: "A"}, {ID: "A"}}}
	if err := m.Validate(); err == nil {
		t.Fatal("duplicate asset accepted")
	}
	m = Model{Damages: []DamageScenario{{ID: "D"}, {ID: "D"}}}
	if err := m.Validate(); err == nil {
		t.Fatal("duplicate damage accepted")
	}
	m = Model{
		Assets:  []Asset{{ID: "A"}},
		Damages: []DamageScenario{{ID: "D"}},
		Threats: []ThreatScenario{
			{ID: "T", AssetID: "A", DamageID: "D"},
			{ID: "T", AssetID: "A", DamageID: "D"},
		},
	}
	if err := m.Validate(); err == nil {
		t.Fatal("duplicate threat accepted")
	}
}
