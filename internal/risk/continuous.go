package risk

import (
	"sort"
	"time"
)

// ContinuousAssessor implements the paper's announced future work (Section
// VI): "a forestry-adapted risk assessment methodology, using ISO/SAE 21434
// (in particular the continuous risk assessment part)". It keeps the TARA
// live during operations: intrusion-detection observations re-rate the
// attack feasibility of matching threat scenarios (an attack observed in the
// field is, by definition, highly feasible *here and now*), and the register
// is recomputed on demand so the coordinator can react to risk changes —
// e.g. tightening the operating mode when a scenario crosses the treatment
// threshold.
//
// Observations decay: a scenario observed long ago relaxes back toward its
// treated baseline after DecayAfter of quiet.
type ContinuousAssessor struct {
	model    *Model
	applied  []string
	baseline []AssessedRisk

	// DecayAfter is how long an observation keeps a scenario escalated.
	DecayAfter time.Duration

	// lastSeen maps threat scenario ID to the latest observation time.
	lastSeen map[string]time.Duration
}

// NewContinuousAssessor builds a live assessor over the model with the given
// applied controls.
func NewContinuousAssessor(model *Model, appliedControls []string) (*ContinuousAssessor, error) {
	baseline, err := model.Assess(appliedControls)
	if err != nil {
		return nil, err
	}
	applied := append([]string(nil), appliedControls...)
	return &ContinuousAssessor{
		model:      model,
		applied:    applied,
		baseline:   baseline,
		DecayAfter: 30 * time.Minute,
		lastSeen:   make(map[string]time.Duration),
	}, nil
}

// attackClassIndex maps an implemented attack class to the threat scenarios
// it realises.
func (a *ContinuousAssessor) scenariosForClass(attackClass string) []string {
	var out []string
	for _, t := range a.model.Threats {
		if t.AttackClass == attackClass && t.AttackClass != "" {
			out = append(out, t.ID)
		}
	}
	return out
}

// ObserveAttack records that an attack of the given class was observed (by
// the IDS or an operator) at virtual time now. Unknown classes are ignored
// — observation of something outside the model is a finding for the next
// full TARA iteration, not for the live register.
func (a *ContinuousAssessor) ObserveAttack(attackClass string, now time.Duration) {
	for _, id := range a.scenariosForClass(attackClass) {
		a.lastSeen[id] = now
	}
}

// ObserveAlertType maps common IDS alert types to attack classes and records
// the observation.
func (a *ContinuousAssessor) ObserveAlertType(alertType string, now time.Duration) {
	class, ok := alertClassMap[alertType]
	if !ok {
		return
	}
	a.ObserveAttack(class, now)
}

var alertClassMap = map[string]string{
	"link-degraded":   "rf-jamming",
	"deauth-flood":    "deauth-flood",
	"mgmt-forgery":    "deauth-flood",
	"gnss-anomaly":    "gnss-spoof",
	"replay":          "replay",
	"tampered-record": "command-injection",
	"auth-failure":    "command-injection",
}

// Current recomputes the live register at virtual time now: scenarios with a
// fresh observation are escalated to FeasibilityHigh (observed attacks are
// feasible by demonstration); stale observations fall back to the treated
// baseline.
func (a *ContinuousAssessor) Current(now time.Duration) []AssessedRisk {
	return a.CurrentInto(nil, now)
}

// CurrentInto is Current with a caller-supplied register buffer: the live
// register is appended into dst[:0] and the (possibly grown) slice returned,
// so a 1Hz caller reusing its previous return value recomputes the register
// without allocating. The ordering is identical to Current's — risk value
// descending, scenario ID ascending on ties — and since scenario IDs are
// unique the order is total, so the sort algorithm cannot influence it.
//
//worksim:hotpath
func (a *ContinuousAssessor) CurrentInto(dst []AssessedRisk, now time.Duration) []AssessedRisk {
	dst = append(dst[:0], a.baseline...)
	for i := range dst {
		seen, ok := a.lastSeen[dst[i].Scenario.ID]
		if !ok || now-seen > a.DecayAfter {
			continue
		}
		dst[i].Feasibility = FeasibilityHigh
		dst[i].RiskValue = RiskValue(dst[i].Damage.Impact.Overall(), FeasibilityHigh)
		dst[i].Treatment = RecommendTreatment(dst[i].RiskValue)
	}
	// Insertion sort: the register is small (a dozen scenarios) and
	// sort.Slice's reflect-based swapper allocates per call.
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && assessedLess(&dst[j], &dst[j-1]); j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}

func assessedLess(a, b *AssessedRisk) bool {
	if a.RiskValue != b.RiskValue {
		return a.RiskValue > b.RiskValue
	}
	return a.Scenario.ID < b.Scenario.ID
}

// Escalated returns the scenario IDs currently escalated above their treated
// baseline, sorted.
func (a *ContinuousAssessor) Escalated(now time.Duration) []string {
	base := make(map[string]int, len(a.baseline))
	for _, r := range a.baseline {
		base[r.Scenario.ID] = r.RiskValue
	}
	var out []string
	for _, r := range a.Current(now) {
		if r.RiskValue > base[r.Scenario.ID] {
			out = append(out, r.Scenario.ID)
		}
	}
	sort.Strings(out)
	return out
}

// OperatingMode is the coordinator-facing recommendation derived from the
// live register.
type OperatingMode int

// Operating modes, from normal operation to safe stop.
const (
	ModeNormal OperatingMode = iota + 1
	ModeRestricted
	ModeSafeStop
)

// String returns a short mode label.
func (m OperatingMode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeRestricted:
		return "restricted"
	case ModeSafeStop:
		return "safe-stop"
	default:
		return "unknown"
	}
}

// RecommendMode maps the live register's worst safety-relevant risk to an
// operating mode: risk ≥ 4 with severe safety impact demands a safe stop,
// risk ≥ 3 restricted (slow) operation, else normal.
func RecommendMode(register []AssessedRisk) OperatingMode {
	mode := ModeNormal
	for _, r := range register {
		if r.Damage.Impact.Safety < ImpactMajor {
			continue
		}
		switch {
		case r.RiskValue >= 4:
			return ModeSafeStop
		case r.RiskValue >= 3:
			mode = ModeRestricted
		}
	}
	return mode
}
