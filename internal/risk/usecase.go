package risk

// This file instantiates the combined risk model for the paper's use case
// (Section III, Fig. 2): the partially autonomous forestry worksite with an
// autonomous forwarder, an observation drone, a manual harvester and a site
// coordinator. Threat scenarios carry their knowledge-transfer source domain
// (Fig. 3) and the Table-I characteristics they touch; controls name the
// repository module implementing them, binding the paper's methodology to
// executable evidence.

// Asset IDs of the use case.
const (
	AssetComms      = "A-COMMS"
	AssetGNSS       = "A-GNSS"
	AssetPerception = "A-PERCEPTION"
	AssetDroneFeed  = "A-DRONE-FEED"
	AssetECU        = "A-ECU"
	AssetCoordChan  = "A-COORD"
	AssetOpsData    = "A-OPSDATA"
)

// Control IDs of the use case.
const (
	CtrlPKI        = "CTRL-PKI"
	CtrlPMF        = "CTRL-PMF"
	CtrlGNSSGuard  = "CTRL-GNSS-GUARD"
	CtrlIDS        = "CTRL-IDS"
	CtrlSecureBoot = "CTRL-SECUREBOOT"
	CtrlRedundancy = "CTRL-REDUNDANCY"
	CtrlChanAgile  = "CTRL-CHAN-AGILITY"
	CtrlDRPlan     = "CTRL-DR-PLAN"
	CtrlRBAC       = "CTRL-RBAC"
)

// UseCase bundles the complete combined-assessment input for the AGRARSENSE
// scenario.
type UseCase struct {
	Model           Model
	Architecture    SiteArchitecture
	SafetyFunctions []SafetyFunction
}

// FullControls returns the complete treatment set (the secured pathway).
func (uc *UseCase) FullControls() []string {
	ids := make([]string, 0, len(uc.Model.Controls))
	for _, c := range uc.Model.Controls {
		ids = append(ids, c.ID)
	}
	return ids
}

// BuildUseCase constructs the paper's use-case risk model.
func BuildUseCase() *UseCase {
	model := Model{
		Assets: []Asset{
			{AssetComms, "Worksite radio links", "Machine-to-machine and machine-to-coordinator wireless communication", []string{"integrity", "availability", "authenticity"}},
			{AssetGNSS, "Forwarder GNSS localisation", "Satellite positioning used for autonomous navigation", []string{"integrity", "availability"}},
			{AssetPerception, "People-detection sensor suite", "Forwarder LiDAR, camera and ultrasonic sensors feeding the protective fields", []string{"integrity", "availability"}},
			{AssetDroneFeed, "Drone observation feed", "Aerial detections streamed to the forwarder (Fig. 2 collaborative safety)", []string{"integrity", "availability", "authenticity"}},
			{AssetECU, "Forwarder control unit", "Firmware and control application of the autonomous forwarder", []string{"integrity"}},
			{AssetCoordChan, "Coordinator command channel", "Pause/resume/clear-stop commands from the site coordinator", []string{"integrity", "authenticity"}},
			{AssetOpsData, "Operational and land data", "Positions, harvest volumes, land-ownership related records", []string{"confidentiality"}},
		},
		Damages: []DamageScenario{
			{"D-COLLISION", "Machine strikes a person",
				Impact{Safety: ImpactSevere, Financial: ImpactMajor, Operational: ImpactMajor, Privacy: ImpactNegligible}},
			{"D-MISNAV", "Machine leaves its corridor into the stand",
				Impact{Safety: ImpactMajor, Financial: ImpactModerate, Operational: ImpactMajor, Privacy: ImpactNegligible}},
			{"D-DISRUPT", "Worksite operations halted",
				Impact{Safety: ImpactNegligible, Financial: ImpactMajor, Operational: ImpactMajor, Privacy: ImpactNegligible}},
			{"D-TAMPER", "Adversary-controlled machine behaviour",
				Impact{Safety: ImpactSevere, Financial: ImpactSevere, Operational: ImpactSevere, Privacy: ImpactNegligible}},
			{"D-LEAK", "Confidential operations or land data exposed",
				Impact{Safety: ImpactNegligible, Financial: ImpactModerate, Operational: ImpactNegligible, Privacy: ImpactMajor}},
		},
		Threats: []ThreatScenario{
			{
				ID: "T-JAM", Name: "RF jamming of worksite links",
				AssetID: AssetComms, DamageID: "D-DISRUPT", Vector: VectorAdjacent,
				Baseline:    AttackPotential{ElapsedTime: 1, Expertise: 3, Knowledge: 0, Window: 1, Equipment: 4},
				AttackClass: "rf-jamming", Domain: DomainMining,
				Characteristics: []string{CharRemoteIsolated, CharRemoteMonitor, CharHeavyMachinery},
			},
			{
				ID: "T-DEAUTH", Name: "Wi-Fi de-authentication flood",
				AssetID: AssetComms, DamageID: "D-DISRUPT", Vector: VectorAdjacent,
				Baseline:    AttackPotential{ElapsedTime: 0, Expertise: 3, Knowledge: 3, Window: 1, Equipment: 4},
				AttackClass: "deauth-flood", Domain: DomainMining,
				Characteristics: []string{CharAutonomous, CharRemoteMonitor},
			},
			{
				ID: "T-GNSS-SPOOF", Name: "GNSS spoofing of the forwarder",
				AssetID: AssetGNSS, DamageID: "D-MISNAV", Vector: VectorAdjacent,
				Baseline:    AttackPotential{ElapsedTime: 4, Expertise: 3, Knowledge: 3, Window: 1, Equipment: 7},
				AttackClass: "gnss-spoof", Domain: DomainMining,
				Characteristics: []string{CharRemoteIsolated, CharAutonomous, CharHeavyMachinery},
			},
			{
				ID: "T-GNSS-JAM", Name: "GNSS jamming (loss of fix)",
				AssetID: AssetGNSS, DamageID: "D-DISRUPT", Vector: VectorAdjacent,
				Baseline:    AttackPotential{ElapsedTime: 1, Expertise: 3, Knowledge: 0, Window: 1, Equipment: 4},
				AttackClass: "gnss-jam", Domain: DomainMining,
				Characteristics: []string{CharRemoteIsolated, CharAutonomous},
			},
			{
				ID: "T-CAM-BLIND", Name: "Camera blinding of people detection",
				AssetID: AssetPerception, DamageID: "D-COLLISION", Vector: VectorAdjacent,
				Baseline:    AttackPotential{ElapsedTime: 1, Expertise: 3, Knowledge: 3, Window: 4, Equipment: 4},
				AttackClass: "camera-blind", Domain: DomainAutomotive,
				Characteristics: []string{CharAutonomous, CharHeavyMachinery},
			},
			{
				ID: "T-REPLAY", Name: "Replay of captured command traffic",
				AssetID: AssetCoordChan, DamageID: "D-MISNAV", Vector: VectorAdjacent,
				Baseline:    AttackPotential{ElapsedTime: 1, Expertise: 3, Knowledge: 3, Window: 1, Equipment: 4},
				AttackClass: "replay", Domain: DomainAutomotive,
				Characteristics: []string{CharRemoteMonitor},
			},
			{
				ID: "T-INJECT", Name: "Forged coordinator commands (MITM injection)",
				AssetID: AssetCoordChan, DamageID: "D-COLLISION", Vector: VectorAdjacent,
				Baseline:    AttackPotential{ElapsedTime: 1, Expertise: 3, Knowledge: 3, Window: 1, Equipment: 4},
				AttackClass: "command-injection", Domain: DomainAutomotive,
				Characteristics: []string{CharAutonomous, CharRemoteMonitor, CharHeavyMachinery},
			},
			{
				ID: "T-FW-TAMPER", Name: "Firmware tampering of the forwarder ECU",
				AssetID: AssetECU, DamageID: "D-TAMPER", Vector: VectorLocal,
				Baseline:    AttackPotential{ElapsedTime: 4, Expertise: 6, Knowledge: 3, Window: 4, Equipment: 4},
				AttackClass: "boot-tamper", Domain: DomainAutomotive,
				Characteristics: []string{CharAutonomous, CharThreatProfile},
			},
			{
				ID: "T-DRONE-FORGE", Name: "Forged or suppressed drone detections",
				AssetID: AssetDroneFeed, DamageID: "D-COLLISION", Vector: VectorAdjacent,
				Baseline:    AttackPotential{ElapsedTime: 4, Expertise: 6, Knowledge: 3, Window: 1, Equipment: 4},
				AttackClass: "command-injection", Domain: DomainForestry,
				Characteristics: []string{CharAutonomous, CharHeavyMachinery},
			},
			{
				ID: "T-EAVESDROP", Name: "Passive interception of operational data",
				AssetID: AssetOpsData, DamageID: "D-LEAK", Vector: VectorAdjacent,
				Baseline:    AttackPotential{ElapsedTime: 0, Expertise: 0, Knowledge: 0, Window: 1, Equipment: 4},
				AttackClass: "", Domain: DomainForestry,
				Characteristics: []string{CharDataPrivacy, CharConfidentiality},
			},
			{
				ID: "T-DISASTER-EXPLOIT", Name: "Attack during disaster-degraded operations",
				AssetID: AssetComms, DamageID: "D-DISRUPT", Vector: VectorAdjacent,
				Baseline:    AttackPotential{ElapsedTime: 4, Expertise: 3, Knowledge: 3, Window: 4, Equipment: 4},
				AttackClass: "", Domain: DomainForestry,
				Characteristics: []string{CharNaturalDisaster, CharRemoteIsolated},
			},
			{
				ID: "T-INSIDER", Name: "Misused or stolen operator credentials",
				AssetID: AssetCoordChan, DamageID: "D-DISRUPT", Vector: VectorNetwork,
				Baseline:    AttackPotential{ElapsedTime: 4, Expertise: 3, Knowledge: 7, Window: 4, Equipment: 0},
				AttackClass: "", Domain: DomainForestry,
				Characteristics: []string{CharThreatProfile, CharConfidentiality},
			},
		},
		Controls: []Control{
			{
				ID: CtrlPKI, Name: "Worksite PKI with mutually authenticated encrypted channels",
				Description:    "Ed25519 CA, certificate-based SIGMA handshake, AES-GCM records with replay windows",
				PotentialDelta: AttackPotential{ElapsedTime: 4, Expertise: 5, Knowledge: 4, Window: 0, Equipment: 5},
				Covers:         []string{"T-INJECT", "T-REPLAY", "T-EAVESDROP", "T-DRONE-FORGE", "T-INSIDER"},
				FRLevels:       map[FR]SL{FR1IAC: 3, FR2UC: 2, FR3SI: 3, FR4DC: 3, FR5RDF: 2},
				Module:         "internal/pki, internal/securechan",
			},
			{
				ID: CtrlPMF, Name: "Protected management frames",
				Description:    "802.11w-style MIC on de-auth/management frames",
				PotentialDelta: AttackPotential{ElapsedTime: 4, Expertise: 3, Knowledge: 4, Window: 0, Equipment: 4},
				Covers:         []string{"T-DEAUTH"},
				FRLevels:       map[FR]SL{FR1IAC: 2, FR3SI: 2},
				Module:         "internal/netsim",
			},
			{
				ID: CtrlGNSSGuard, Name: "GNSS plausibility guard with fail-safe",
				Description:    "Carrier-strength and kinematic plausibility checks; nav-integrity stop latch",
				PotentialDelta: AttackPotential{ElapsedTime: 4, Expertise: 3, Knowledge: 4, Window: 0, Equipment: 2},
				Covers:         []string{"T-GNSS-SPOOF", "T-GNSS-JAM"},
				FRLevels:       map[FR]SL{FR3SI: 2, FR6TRE: 2},
				Module:         "internal/sensors (GNSSGuard)",
			},
			{
				ID: CtrlIDS, Name: "Worksite intrusion detection system",
				Description:    "Signature + anomaly detection over link, management and navigation telemetry",
				PotentialDelta: AttackPotential{ElapsedTime: 1, Expertise: 2, Knowledge: 0, Window: 2, Equipment: 0},
				Covers:         []string{"T-JAM", "T-DEAUTH", "T-GNSS-SPOOF", "T-REPLAY", "T-INJECT", "T-DISASTER-EXPLOIT"},
				FRLevels:       map[FR]SL{FR6TRE: 3},
				Module:         "internal/ids",
			},
			{
				ID: CtrlSecureBoot, Name: "Measured and verified boot with attestation",
				Description:    "Signed manifests, anti-rollback, PCR measurement, remote attestation quotes",
				PotentialDelta: AttackPotential{ElapsedTime: 6, Expertise: 2, Knowledge: 4, Window: 4, Equipment: 3},
				Covers:         []string{"T-FW-TAMPER"},
				FRLevels:       map[FR]SL{FR3SI: 3},
				Module:         "internal/secureboot",
			},
			{
				ID: CtrlRedundancy, Name: "Redundant multi-view perception",
				Description:    "LiDAR + camera + ultrasonic + drone aerial view fused with confirmation voting (Petit et al. redundancy defence)",
				PotentialDelta: AttackPotential{ElapsedTime: 4, Expertise: 3, Knowledge: 0, Window: 4, Equipment: 4},
				Covers:         []string{"T-CAM-BLIND", "T-DRONE-FORGE"},
				FRLevels:       map[FR]SL{FR7RA: 2},
				Module:         "internal/fusion, internal/sensors",
			},
			{
				ID: CtrlChanAgile, Name: "Channel agility against narrowband jamming",
				Description:    "Coordinated channel switching raises the cost of narrowband jamming",
				PotentialDelta: AttackPotential{ElapsedTime: 4, Expertise: 3, Knowledge: 3, Window: 0, Equipment: 3},
				Covers:         []string{"T-JAM"},
				FRLevels:       map[FR]SL{FR7RA: 2},
				Module:         "internal/radio (channel allocation)",
			},
			{
				ID: CtrlDRPlan, Name: "Disaster recovery and continuity plan",
				Description:    "Pre-planned degraded modes and recovery runbooks for disaster conditions (Table I C3)",
				PotentialDelta: AttackPotential{ElapsedTime: 4, Expertise: 0, Knowledge: 3, Window: 4, Equipment: 0},
				Covers:         []string{"T-DISASTER-EXPLOIT"},
				FRLevels:       map[FR]SL{FR7RA: 2},
				Module:         "organizational",
			},
			{
				ID: CtrlRBAC, Name: "Role-restricted certificates",
				Description:    "Role field in worksite certificates: drones cannot issue coordinator commands",
				PotentialDelta: AttackPotential{ElapsedTime: 4, Expertise: 3, Knowledge: 4, Window: 4, Equipment: 0},
				Covers:         []string{"T-INSIDER"},
				FRLevels:       map[FR]SL{FR1IAC: 2, FR2UC: 3},
				Module:         "internal/pki (roles)",
			},
		},
	}

	arch := SiteArchitecture{
		Zones: []Zone{
			{
				Name:     "Z-MACHINE",
				AssetIDs: []string{AssetECU, AssetGNSS, AssetPerception},
				TargetSL: NewSLVector(2, 2, 3, 1, 1, 2, 2),
			},
			{
				Name:     "Z-COORDINATION",
				AssetIDs: []string{AssetCoordChan, AssetOpsData},
				TargetSL: NewSLVector(3, 2, 2, 2, 2, 2, 1),
			},
			{
				Name:     "Z-AIR",
				AssetIDs: []string{AssetDroneFeed},
				TargetSL: NewSLVector(2, 1, 2, 1, 1, 2, 2),
			},
		},
		Conduits: []Conduit{
			{
				Name: "CON-MACHINE-COORD", FromZone: "Z-MACHINE", ToZone: "Z-COORDINATION",
				TargetSL: NewSLVector(3, 2, 3, 2, 2, 2, 2),
			},
			{
				Name: "CON-AIR-MACHINE", FromZone: "Z-AIR", ToZone: "Z-MACHINE",
				TargetSL: NewSLVector(2, 1, 3, 1, 1, 2, 2),
			},
		},
	}

	functions := []SafetyFunction{
		{
			ID: "SF-PD", Name: "Collaborative people-detection protective stop (Fig. 2)",
			RequiredPL: RequiredPL(S2, F1, P2), // PL d
			Category:   Cat3, MTTFd: MTTFdHigh, DC: DCMedium,
			DependsOnAssets: []string{AssetPerception, AssetDroneFeed, AssetComms},
		},
		{
			ID: "SF-ESTOP", Name: "Remote emergency stop",
			RequiredPL: RequiredPL(S2, F1, P2), // PL d
			Category:   Cat3, MTTFd: MTTFdHigh, DC: DCMedium,
			DependsOnAssets: []string{AssetComms, AssetCoordChan},
		},
		{
			ID: "SF-NAV", Name: "Corridor-keeping navigation integrity",
			RequiredPL: RequiredPL(S2, F1, P1), // PL c
			Category:   Cat3, MTTFd: MTTFdMedium, DC: DCMedium,
			DependsOnAssets: []string{AssetGNSS, AssetECU},
		},
		{
			ID: "SF-WATCHDOG", Name: "Communication-loss fail-safe stop",
			RequiredPL: RequiredPL(S1, F2, P2), // PL c
			Category:   Cat3, MTTFd: MTTFdMedium, DC: DCMedium,
			DependsOnAssets: []string{AssetComms},
		},
	}

	return &UseCase{Model: model, Architecture: arch, SafetyFunctions: functions}
}
