// Package risk implements the paper's core methodological contribution: a
// combined safety–cybersecurity risk assessment for autonomous forestry
// machinery, assembled — as Section VI announces for future work — from
// ISO/SAE 21434 (threat analysis and risk assessment, TARA), IEC 62443
// (security levels over foundational requirements, zones and conduits),
// ISO 13849 (performance levels for safety functions), and IEC TS 63074
// (security-informed degradation of functional safety), plus the
// forestry-specific characteristic catalog of Table I.
//
// The package is pure model + arithmetic: it consumes an asset/threat model
// (see BuildUseCase for the paper's Fig. 2 use case) and produces risk
// registers, security-level gap analyses, and security-informed performance
// levels that the assurance package binds into the certification argument.
package risk

import (
	"fmt"
	"sort"
)

// ImpactLevel rates damage severity per ISO/SAE 21434 §15 (one rating per
// impact category).
type ImpactLevel int

// Impact levels.
const (
	ImpactNegligible ImpactLevel = iota + 1
	ImpactModerate
	ImpactMajor
	ImpactSevere
)

// String returns a short impact label.
func (l ImpactLevel) String() string {
	switch l {
	case ImpactNegligible:
		return "negligible"
	case ImpactModerate:
		return "moderate"
	case ImpactMajor:
		return "major"
	case ImpactSevere:
		return "severe"
	default:
		return fmt.Sprintf("impact(%d)", int(l))
	}
}

// Impact rates a damage scenario across the four 21434 categories (S, F, O,
// P).
type Impact struct {
	Safety      ImpactLevel `json:"safety"`
	Financial   ImpactLevel `json:"financial"`
	Operational ImpactLevel `json:"operational"`
	Privacy     ImpactLevel `json:"privacy"`
}

// Overall returns the controlling (maximum) impact level.
func (im Impact) Overall() ImpactLevel {
	max := im.Safety
	for _, l := range []ImpactLevel{im.Financial, im.Operational, im.Privacy} {
		if l > max {
			max = l
		}
	}
	if max == 0 {
		return ImpactNegligible
	}
	return max
}

// FeasibilityRating per ISO/SAE 21434 §15.8 (attack-potential based).
type FeasibilityRating int

// Feasibility ratings.
const (
	FeasibilityVeryLow FeasibilityRating = iota + 1
	FeasibilityLow
	FeasibilityMedium
	FeasibilityHigh
)

// String returns a short feasibility label.
func (r FeasibilityRating) String() string {
	switch r {
	case FeasibilityVeryLow:
		return "very-low"
	case FeasibilityLow:
		return "low"
	case FeasibilityMedium:
		return "medium"
	case FeasibilityHigh:
		return "high"
	default:
		return fmt.Sprintf("feasibility(%d)", int(r))
	}
}

// AttackPotential holds the five attack-potential factors of ISO/SAE 21434
// Annex G (ISO 18045 scale): higher values mean the attack is harder.
type AttackPotential struct {
	ElapsedTime int `json:"elapsedTime"` // 0,1,4,10,17,19
	Expertise   int `json:"expertise"`   // 0,3,6,8
	Knowledge   int `json:"knowledge"`   // 0,3,7,11
	Window      int `json:"window"`      // 0,1,4,10
	Equipment   int `json:"equipment"`   // 0,4,7,9
}

// Sum returns the aggregate attack potential.
func (p AttackPotential) Sum() int {
	return p.ElapsedTime + p.Expertise + p.Knowledge + p.Window + p.Equipment
}

// Rating maps the aggregate attack potential to a feasibility rating using
// the 21434 Annex G thresholds.
func (p AttackPotential) Rating() FeasibilityRating {
	switch s := p.Sum(); {
	case s < 14:
		return FeasibilityHigh
	case s < 20:
		return FeasibilityMedium
	case s < 25:
		return FeasibilityLow
	default:
		return FeasibilityVeryLow
	}
}

// RiskValue computes the 21434 risk value (1..5) from the controlling impact
// and the attack feasibility (§15.9 risk matrix).
func RiskValue(impact ImpactLevel, feas FeasibilityRating) int {
	// Rows: impact (negligible..severe); cols: feasibility (very-low..high).
	matrix := [4][4]int{
		{1, 1, 1, 1}, // negligible
		{1, 2, 2, 3}, // moderate
		{1, 2, 3, 4}, // major
		{2, 3, 4, 5}, // severe
	}
	return matrix[int(impact)-1][int(feas)-1]
}

// CAL is the cybersecurity assurance level (ISO/SAE 21434 Annex E).
type CAL int

// CALs. CALNone marks scenarios below assurance-level relevance.
const (
	CALNone CAL = iota
	CAL1
	CAL2
	CAL3
	CAL4
)

// String returns a short CAL label.
func (c CAL) String() string {
	if c == CALNone {
		return "-"
	}
	return fmt.Sprintf("CAL%d", int(c))
}

// DetermineCAL maps controlling impact and attack vector exposure to a CAL
// (Annex E style: higher impact and more exposed interfaces demand more
// assurance).
func DetermineCAL(impact ImpactLevel, vector AttackVector) CAL {
	// Rows: impact; cols: vector (physical, local, adjacent, network).
	matrix := [4][4]CAL{
		{CALNone, CALNone, CAL1, CAL1}, // negligible
		{CAL1, CAL1, CAL2, CAL2},       // moderate
		{CAL1, CAL2, CAL3, CAL3},       // major
		{CAL2, CAL3, CAL3, CAL4},       // severe
	}
	return matrix[int(impact)-1][int(vector)-1]
}

// AttackVector classifies interface exposure (CVSS-style, used by Annex E).
type AttackVector int

// Attack vectors, from least to most exposed.
const (
	VectorPhysical AttackVector = iota + 1
	VectorLocal
	VectorAdjacent
	VectorNetwork
)

// String returns a short vector label.
func (v AttackVector) String() string {
	switch v {
	case VectorPhysical:
		return "physical"
	case VectorLocal:
		return "local"
	case VectorAdjacent:
		return "adjacent"
	case VectorNetwork:
		return "network"
	default:
		return fmt.Sprintf("vector(%d)", int(v))
	}
}

// Treatment is the 21434 §15.10 risk treatment decision.
type Treatment int

// Treatments.
const (
	TreatmentAccept Treatment = iota + 1
	TreatmentReduce
	TreatmentShare
	TreatmentAvoid
)

// String returns a short treatment label.
func (t Treatment) String() string {
	switch t {
	case TreatmentAccept:
		return "accept"
	case TreatmentReduce:
		return "reduce"
	case TreatmentShare:
		return "share"
	case TreatmentAvoid:
		return "avoid"
	default:
		return fmt.Sprintf("treatment(%d)", int(t))
	}
}

// RecommendTreatment applies the default policy: risk 1 accepted, 2-3
// reduced, 4 reduced, 5 avoided (redesign).
func RecommendTreatment(riskValue int) Treatment {
	switch {
	case riskValue <= 1:
		return TreatmentAccept
	case riskValue <= 4:
		return TreatmentReduce
	default:
		return TreatmentAvoid
	}
}

// Asset is an item of the worksite with cybersecurity properties worth
// protecting (21434 §15.3).
type Asset struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Description string `json:"description"`
	// Properties lists the security properties at stake (C, I, A).
	Properties []string `json:"properties"`
}

// DamageScenario describes harm from compromising an asset (21434 §15.4).
type DamageScenario struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Impact Impact `json:"impact"`
}

// ThreatScenario links an asset, an attack path, and a damage scenario
// (21434 §15.5-15.8).
type ThreatScenario struct {
	ID       string          `json:"id"`
	Name     string          `json:"name"`
	AssetID  string          `json:"assetId"`
	DamageID string          `json:"damageId"`
	Vector   AttackVector    `json:"vector"`
	Baseline AttackPotential `json:"baseline"`
	// AttackClass names the implemented attack reproducing this scenario
	// (package attack), binding the risk model to executable evidence.
	AttackClass string `json:"attackClass,omitempty"`
	// Characteristics lists Table I characteristic IDs this scenario touches.
	Characteristics []string `json:"characteristics,omitempty"`
	// Domain records the knowledge-transfer source (forestry, mining,
	// automotive) per Fig. 3.
	Domain string `json:"domain,omitempty"`
}

// Control is a cybersecurity countermeasure. Applying it increases the
// attack potential (making attacks harder) and raises achieved 62443 SLs.
type Control struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Description string `json:"description"`
	// PotentialDelta is added to the scenario's attack potential when the
	// control covers it.
	PotentialDelta AttackPotential `json:"potentialDelta"`
	// Covers lists threat scenario IDs mitigated by this control.
	Covers []string `json:"covers"`
	// FRLevels records the 62443 foundational-requirement levels this
	// control contributes (see iec62443.go).
	FRLevels map[FR]SL `json:"frLevels,omitempty"`
	// Module names the repository package implementing the control.
	Module string `json:"module,omitempty"`
}

// AssessedRisk is one row of the risk register.
type AssessedRisk struct {
	Scenario    ThreatScenario    `json:"scenario"`
	Damage      DamageScenario    `json:"damage"`
	Feasibility FeasibilityRating `json:"feasibility"`
	RiskValue   int               `json:"riskValue"`
	CAL         CAL               `json:"cal"`
	Treatment   Treatment         `json:"treatment"`
	// Applied lists control IDs included in this assessment.
	Applied []string `json:"applied,omitempty"`
}

// Model is a complete TARA input: assets, damage and threat scenarios, and
// the control catalog.
type Model struct {
	Assets   []Asset          `json:"assets"`
	Damages  []DamageScenario `json:"damages"`
	Threats  []ThreatScenario `json:"threats"`
	Controls []Control        `json:"controls"`
}

// Validate checks referential integrity of the model.
func (m *Model) Validate() error {
	assets := make(map[string]bool, len(m.Assets))
	for _, a := range m.Assets {
		if assets[a.ID] {
			return fmt.Errorf("risk model: duplicate asset %q", a.ID)
		}
		assets[a.ID] = true
	}
	damages := make(map[string]bool, len(m.Damages))
	for _, d := range m.Damages {
		if damages[d.ID] {
			return fmt.Errorf("risk model: duplicate damage scenario %q", d.ID)
		}
		damages[d.ID] = true
	}
	threats := make(map[string]bool, len(m.Threats))
	for _, t := range m.Threats {
		if threats[t.ID] {
			return fmt.Errorf("risk model: duplicate threat scenario %q", t.ID)
		}
		threats[t.ID] = true
		if !assets[t.AssetID] {
			return fmt.Errorf("risk model: threat %q references unknown asset %q", t.ID, t.AssetID)
		}
		if !damages[t.DamageID] {
			return fmt.Errorf("risk model: threat %q references unknown damage %q", t.ID, t.DamageID)
		}
	}
	for _, c := range m.Controls {
		for _, cov := range c.Covers {
			if !threats[cov] {
				return fmt.Errorf("risk model: control %q covers unknown threat %q", c.ID, cov)
			}
		}
	}
	return nil
}

// Damage returns the damage scenario with the given ID.
func (m *Model) Damage(id string) (DamageScenario, bool) {
	for _, d := range m.Damages {
		if d.ID == id {
			return d, true
		}
	}
	return DamageScenario{}, false
}

// Assess runs the TARA with the given control IDs applied and returns the
// risk register sorted by descending risk value (ties by scenario ID).
func (m *Model) Assess(appliedControls []string) ([]AssessedRisk, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	applied := make(map[string]Control, len(appliedControls))
	for _, id := range appliedControls {
		found := false
		for _, c := range m.Controls {
			if c.ID == id {
				applied[id] = c
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("risk model: unknown control %q", id)
		}
	}

	out := make([]AssessedRisk, 0, len(m.Threats))
	for _, t := range m.Threats {
		dmg, _ := m.Damage(t.DamageID)
		pot := t.Baseline
		var used []string
		for _, id := range appliedControls {
			c := applied[id]
			for _, cov := range c.Covers {
				if cov == t.ID {
					pot.ElapsedTime += c.PotentialDelta.ElapsedTime
					pot.Expertise += c.PotentialDelta.Expertise
					pot.Knowledge += c.PotentialDelta.Knowledge
					pot.Window += c.PotentialDelta.Window
					pot.Equipment += c.PotentialDelta.Equipment
					used = append(used, id)
					break
				}
			}
		}
		feas := pot.Rating()
		rv := RiskValue(dmg.Impact.Overall(), feas)
		out = append(out, AssessedRisk{
			Scenario:    t,
			Damage:      dmg,
			Feasibility: feas,
			RiskValue:   rv,
			CAL:         DetermineCAL(dmg.Impact.Overall(), t.Vector),
			Treatment:   RecommendTreatment(rv),
			Applied:     used,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RiskValue != out[j].RiskValue {
			return out[i].RiskValue > out[j].RiskValue
		}
		return out[i].Scenario.ID < out[j].Scenario.ID
	})
	return out, nil
}
