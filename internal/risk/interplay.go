package risk

import (
	"fmt"
	"sort"
)

// SecurityInformedPL is the outcome of the IEC TS 63074 interplay analysis
// for one safety function: its designed performance level, the worst
// untreated security risk among the assets it depends on, and the resulting
// security-informed (possibly degraded) performance level.
//
// The degradation rule operationalises the technical specification's core
// statement — "security threats and vulnerabilities could potentially
// compromise the functional safety of safety-related control systems" — as:
// an untreated risk value of 4 on a depended asset costs one PL, a value of
// 5 costs two (the function cannot be claimed better than its most
// compromising dependency); risks ≤ 3 with treatment recommended cost one
// level only if left untreated at CAL3+.
type SecurityInformedPL struct {
	Function      SafetyFunction `json:"function"`
	DesignedPL    PL             `json:"designedPl"`
	WorstRisk     int            `json:"worstRisk"`
	WorstScenario string         `json:"worstScenario,omitempty"`
	EffectivePL   PL             `json:"effectivePl"`
	MeetsRequired bool           `json:"meetsRequired"`
	Degraded      bool           `json:"degraded"`
}

// AnalyzeInterplay computes security-informed PLs for all safety functions
// against a risk register (the output of Model.Assess, before or after
// treatment).
func AnalyzeInterplay(functions []SafetyFunction, register []AssessedRisk) ([]SecurityInformedPL, error) {
	// Index the worst residual risk per asset.
	worst := make(map[string]AssessedRisk)
	for _, r := range register {
		cur, ok := worst[r.Scenario.AssetID]
		if !ok || r.RiskValue > cur.RiskValue {
			worst[r.Scenario.AssetID] = r
		}
	}

	out := make([]SecurityInformedPL, 0, len(functions))
	for _, sf := range functions {
		designed, ok := sf.DesignedPL()
		if !ok {
			return nil, fmt.Errorf("interplay: safety function %q has invalid architecture (%s, DC %d)",
				sf.ID, sf.Category, sf.DC)
		}
		res := SecurityInformedPL{
			Function:    sf,
			DesignedPL:  designed,
			EffectivePL: designed,
		}
		for _, assetID := range sf.DependsOnAssets {
			r, ok := worst[assetID]
			if !ok {
				continue
			}
			if r.RiskValue > res.WorstRisk {
				res.WorstRisk = r.RiskValue
				res.WorstScenario = r.Scenario.ID
			}
		}
		res.EffectivePL = degradePL(designed, res.WorstRisk)
		res.Degraded = res.EffectivePL < designed
		res.MeetsRequired = res.EffectivePL >= sf.RequiredPL
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Function.ID < out[j].Function.ID })
	return out, nil
}

// degradePL applies the interplay degradation rule.
func degradePL(designed PL, worstRisk int) PL {
	drop := 0
	switch {
	case worstRisk >= 5:
		drop = 2
	case worstRisk >= 4:
		drop = 1
	}
	out := PL(int(designed) - drop)
	if out < PLa {
		out = PLa
	}
	return out
}

// InterplaySummary aggregates an interplay analysis for reports.
type InterplaySummary struct {
	Functions     int `json:"functions"`
	Meeting       int `json:"meeting"`
	Degraded      int `json:"degraded"`
	FailedByCyber int `json:"failedByCyber"` // would meet PLr but for security risk
}

// Summarize aggregates an interplay result set.
func Summarize(results []SecurityInformedPL) InterplaySummary {
	s := InterplaySummary{Functions: len(results)}
	for _, r := range results {
		if r.MeetsRequired {
			s.Meeting++
		}
		if r.Degraded {
			s.Degraded++
			if !r.MeetsRequired && r.DesignedPL >= r.Function.RequiredPL {
				s.FailedByCyber++
			}
		}
	}
	return s
}
