// Dronecollab reproduces the paper's Fig. 2 claim: "the collaborative drone
// allows for an additional point of view to eliminate occlusions caused by
// terrain obstacles". It sweeps forest occlusion density and prints the
// people-detection miss rate with and without the drone's aerial camera.
//
//	go run ./examples/dronecollab
package main

import (
	"fmt"
	"os"

	"repro/worksim/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dronecollab:", err)
		os.Exit(1)
	}
}

func run() error {
	res := experiments.E2DronePOV(42, 120)
	fmt.Print(res.Figure.Render())
	fmt.Println()

	// Summarise the Fig. 2 effect at the harshest point.
	last := res.Points[len(res.Points)-1]
	fmt.Printf("At occlusion %.2f the drone cuts the miss rate from %.0f%% to %.0f%%.\n",
		last.Occlusion, 100*last.MissFwOnly, 100*last.MissWithDrone)

	fmt.Println()
	fmt.Print(experiments.E2aFusionPolicy(42, 80).Table.Render())
	return nil
}
