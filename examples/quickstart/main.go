// Quickstart: build the Fig. 1 forestry worksite as a steppable session,
// watch it work through a live observer, and print the final KPIs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/worksite"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A worksite is configured from a seed; everything that happens is a
	// deterministic function of it.
	cfg := worksite.DefaultConfig(42)
	cfg.Profile = worksite.Secured() // full defence stack

	// A session is the steppable handle on the simulation: subscribe typed
	// observers, advance time, read the report.
	sess, err := worksite.NewSession(cfg)
	if err != nil {
		return err
	}

	// Observers tap the run as it happens — here, a progress line every
	// two simulated minutes plus every haul-cycle transition.
	var nextProgress = 2 * time.Minute
	sess.Subscribe(&worksite.ObserverFuncs{
		Tick: func(t worksite.TickSnapshot) {
			if t.At < nextProgress {
				return
			}
			nextProgress += 2 * time.Minute
			fmt.Printf("  [%4.0fs] %-10s logs=%d min-worker-dist=%.1fm\n",
				t.At.Seconds(), t.Mission, t.LogsDelivered, t.MinWorkerDistM)
		},
		MissionPhase: func(m worksite.MissionPhase) {
			fmt.Printf("  [%4.0fs] %s\n", m.At.Seconds(), m.Detail)
		},
	})

	fmt.Println("Quickstart: 10 simulated minutes of autonomous log transport")
	rep, err := sess.Run(10 * time.Minute)
	if err != nil {
		return err
	}

	m := rep.Metrics
	fmt.Printf("  logs delivered:     %d\n", m.LogsDelivered)
	fmt.Printf("  distance driven:    %.0f m\n", m.DistanceM)
	fmt.Printf("  safety stops:       %d (%.0fs stopped)\n", m.SafetyStops, m.StoppedFor.Seconds())
	fmt.Printf("  unsafe episodes:    %d\n", m.UnsafeEpisodes)
	fmt.Printf("  collisions:         %d\n", m.Collisions)
	fmt.Printf("  person tracks:      %d confirmed (%d false alarms)\n", m.TracksConfirmed, m.FalseAlarms)
	fmt.Printf("  min worker distance %.1f m\n", m.MinWorkerDistM)
	return nil
}
