// Quickstart: open the Fig. 1 forestry worksite through the public worksim
// façade, watch it work through a live observer, and print the final KPIs.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/worksim"
	"repro/worksim/event"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A scenario declaratively describes the operational situation;
	// everything that happens is a deterministic function of it, the seed
	// and the horizon. Observers tap the run as it happens — here, a
	// progress line every two simulated minutes plus every haul-cycle
	// transition.
	var nextProgress = 2 * time.Minute
	sess, err := worksim.Open(worksim.Baseline(),
		worksim.WithSeed(42),
		worksim.WithHorizon(10*time.Minute),
		worksim.WithProfile(worksim.Secured()), // full defence stack
		worksim.WithObserver(&event.ObserverFuncs{
			Tick: func(t event.TickSnapshot) {
				if t.At < nextProgress {
					return
				}
				nextProgress += 2 * time.Minute
				fmt.Printf("  [%4.0fs] %-10s logs=%d min-worker-dist=%.1fm\n",
					t.At.Seconds(), t.Mission, t.LogsDelivered, t.MinWorkerDistM)
			},
			MissionPhase: func(m event.MissionPhase) {
				fmt.Printf("  [%4.0fs] %s\n", m.At.Seconds(), m.Detail)
			},
		}))
	if err != nil {
		return err
	}

	fmt.Println("Quickstart: 10 simulated minutes of autonomous log transport")
	rep, err := sess.Run(context.Background())
	if err != nil {
		return err
	}

	m := rep.Metrics
	fmt.Printf("  logs delivered:     %d\n", m.LogsDelivered)
	fmt.Printf("  distance driven:    %.0f m\n", m.DistanceM)
	fmt.Printf("  safety stops:       %d (%.0fs stopped)\n", m.SafetyStops, m.StoppedFor.Seconds())
	fmt.Printf("  unsafe episodes:    %d\n", m.UnsafeEpisodes)
	fmt.Printf("  collisions:         %d\n", m.Collisions)
	fmt.Printf("  person tracks:      %d confirmed (%d false alarms)\n", m.TracksConfirmed, m.FalseAlarms)
	fmt.Printf("  min worker distance %.1f m\n", m.MinWorkerDistM)
	return nil
}
