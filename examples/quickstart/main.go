// Quickstart: build the Fig. 1 forestry worksite, run ten simulated minutes
// of autonomous log transport, and print the KPIs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/worksite"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A worksite is configured from a seed; everything that happens is a
	// deterministic function of it.
	cfg := worksite.DefaultConfig(42)
	cfg.Profile = worksite.Secured() // full defence stack

	site, err := worksite.New(cfg)
	if err != nil {
		return err
	}
	rep, err := site.Run(10 * time.Minute)
	if err != nil {
		return err
	}

	m := rep.Metrics
	fmt.Println("Quickstart: 10 simulated minutes of autonomous log transport")
	fmt.Printf("  logs delivered:     %d\n", m.LogsDelivered)
	fmt.Printf("  distance driven:    %.0f m\n", m.DistanceM)
	fmt.Printf("  safety stops:       %d (%.0fs stopped)\n", m.SafetyStops, m.StoppedFor.Seconds())
	fmt.Printf("  unsafe episodes:    %d\n", m.UnsafeEpisodes)
	fmt.Printf("  collisions:         %d\n", m.Collisions)
	fmt.Printf("  person tracks:      %d confirmed (%d false alarms)\n", m.TracksConfirmed, m.FalseAlarms)
	fmt.Printf("  min worker distance %.1f m\n", m.MinWorkerDistM)
	return nil
}
