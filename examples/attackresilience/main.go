// Attackresilience runs the same multi-phase attack campaign — de-auth
// flood, command injection, GNSS spoofing, wideband jamming — against the
// unsecured and the secured worksite, under identical seeds, and compares
// the outcome. This is Section III-B's interplay claim made executable:
// cyber attacks on an unsecured site produce unsafe machine behaviour; the
// secured site converts them into detected, fail-safe events.
//
//	go run ./examples/attackresilience
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/attack"
	"repro/internal/geo"
	"repro/internal/report"
	"repro/internal/worksite"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attackresilience:", err)
		os.Exit(1)
	}
}

func run() error {
	const d = 20 * time.Minute
	t := report.NewTable("Multi-attack campaign: unsecured vs secured worksite (seed 42)",
		"profile", "logs", "nav_err_max_m", "cmds_applied", "forgeries_blocked",
		"unsafe_episodes", "collisions", "alert_types")
	for _, prof := range []struct {
		name    string
		profile worksite.SecurityProfile
	}{
		{"unsecured", worksite.Unsecured()},
		{"secured", worksite.Secured()},
	} {
		rep, err := campaign(prof.profile, d)
		if err != nil {
			return err
		}
		m := rep.Metrics
		t.AddRow(prof.name, m.LogsDelivered, m.NavErrMaxM, m.CommandsApplied,
			m.ForgeriesBlocked, m.UnsafeEpisodes, m.Collisions, len(rep.Alerts))
	}
	fmt.Print(t.Render())
	return nil
}

func campaign(profile worksite.SecurityProfile, d time.Duration) (worksite.Report, error) {
	cfg := worksite.DefaultConfig(42)
	cfg.Profile = profile
	site, err := worksite.New(cfg)
	if err != nil {
		return worksite.Report{}, err
	}
	c := attack.NewCampaign()
	c.Add(2*time.Minute, 6*time.Minute, attack.NewDeauthFlood(
		site.AttackerAdapter(), worksite.NodeForwarder, worksite.NodeCoordinator, 200*time.Millisecond))
	c.Add(6*time.Minute, 10*time.Minute, attack.NewCommandInjection(
		site.AttackerAdapter(), worksite.NodeCoordinator, worksite.NodeForwarder,
		func() []byte {
			return []byte(`{"type":"command","from":"coordinator","command":"clear-stops"}`)
		}, time.Second))
	c.Add(10*time.Minute, 14*time.Minute,
		attack.NewGNSSSpoof(site.ForwarderGNSS(), geo.V(60, 40)))
	mid := geo.V(0.5*site.Grid().Width(), 0.5*site.Grid().Height())
	c.Add(14*time.Minute, 18*time.Minute,
		attack.NewJamming(site.Medium(), "jam", mid, 1, 38, true))
	c.Schedule(site.Scheduler())
	return site.Run(d)
}
