// Attackresilience runs the catalog's "multi-attack" scenario — a phased
// campaign of de-auth flooding, command injection, GNSS spoofing and
// wideband jamming — against the unsecured and the secured worksite, under
// identical seeds, and compares the outcome. This is Section III-B's
// interplay claim made executable: cyber attacks on an unsecured site
// produce unsafe machine behaviour; the secured site converts them into
// detected, fail-safe events.
//
// The whole adversary schedule is data (internal/scenario's multi-attack
// spec); this example only swaps the security profile between runs. The
// secured run additionally subscribes a session observer, so the incident
// unfolds live: attack phases as the adversary schedules them, and the
// site's security responses as the continuous risk assessment reacts.
//
//	go run ./examples/attackresilience
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/worksite"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attackresilience:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		seed = 42
		d    = 20 * time.Minute
	)
	spec, err := scenario.Get("multi-attack")
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Multi-attack campaign: unsecured vs secured worksite (seed %d)", seed),
		"profile", "logs", "nav_err_max_m", "cmds_applied", "forgeries_blocked",
		"unsafe_episodes", "collisions", "alert_types")
	for _, prof := range []struct {
		name    string
		profile worksite.SecurityProfile
		narrate bool
	}{
		{"unsecured", worksite.Unsecured(), false},
		{"secured", worksite.Secured(), true},
	} {
		sess, _, err := scenario.Build(spec.WithProfile(prof.profile), seed, d)
		if err != nil {
			return err
		}
		if prof.narrate {
			fmt.Println("Incident narration (secured run):")
			sess.Subscribe(&worksite.ObserverFuncs{
				AttackPhase: func(e worksite.AttackPhase) {
					state := "ends"
					if e.Active {
						state = "begins"
					}
					fmt.Printf("  [%5.0fs] attack    %s %s\n", e.At.Seconds(), e.Attack, state)
				},
				SecurityResponse: func(e worksite.SecurityResponse) {
					fmt.Printf("  [%5.0fs] response  %s (%s)\n", e.At.Seconds(), e.Kind, e.Detail)
				},
				ModeChange: func(e worksite.ModeChange) {
					fmt.Printf("  [%5.0fs] mode      %s -> %s\n", e.At.Seconds(), e.From, e.To)
				},
			})
		}
		rep, err := sess.Run(d)
		if err != nil {
			return err
		}
		m := rep.Metrics
		t.AddRow(prof.name, m.LogsDelivered, m.NavErrMaxM, m.CommandsApplied,
			m.ForgeriesBlocked, m.UnsafeEpisodes, m.Collisions, len(rep.Alerts))
	}
	fmt.Println()
	fmt.Print(t.Render())
	return nil
}
