// Attackresilience runs the catalog's "multi-attack" scenario — a phased
// campaign of de-auth flooding, command injection, GNSS spoofing and
// wideband jamming — against the unsecured and the secured worksite, under
// identical seeds, and compares the outcome. This is Section III-B's
// interplay claim made executable: cyber attacks on an unsecured site
// produce unsafe machine behaviour; the secured site converts them into
// detected, fail-safe events.
//
// The whole adversary schedule is data (the worksim catalog's multi-attack
// spec); this example only swaps the security profile between runs. The
// secured run additionally subscribes an event observer, so the incident
// unfolds live: attack phases as the adversary schedules them, and the
// site's security responses as the continuous risk assessment reacts.
//
//	go run ./examples/attackresilience
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/worksim"
	"repro/worksim/event"
	"repro/worksim/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attackresilience:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		seed = 42
		d    = 20 * time.Minute
	)
	spec, err := worksim.Lookup("multi-attack")
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Multi-attack campaign: unsecured vs secured worksite (seed %d)", seed),
		"profile", "logs", "nav_err_max_m", "cmds_applied", "forgeries_blocked",
		"unsafe_episodes", "collisions", "alert_types")
	for _, prof := range []struct {
		name    string
		profile worksim.SecurityProfile
		narrate bool
	}{
		{"unsecured", worksim.Unsecured(), false},
		{"secured", worksim.Secured(), true},
	} {
		opts := []worksim.Option{
			worksim.WithSeed(seed),
			worksim.WithHorizon(d),
			worksim.WithProfile(prof.profile),
		}
		if prof.narrate {
			fmt.Println("Incident narration (secured run):")
			opts = append(opts, worksim.WithObserver(&event.ObserverFuncs{
				AttackPhase: func(e event.AttackPhase) {
					state := "ends"
					if e.Active {
						state = "begins"
					}
					fmt.Printf("  [%5.0fs] attack    %s %s\n", e.At.Seconds(), e.Attack, state)
				},
				SecurityResponse: func(e event.SecurityResponse) {
					fmt.Printf("  [%5.0fs] response  %s (%s)\n", e.At.Seconds(), e.Kind, e.Detail)
				},
				ModeChange: func(e event.ModeChange) {
					fmt.Printf("  [%5.0fs] mode      %s -> %s\n", e.At.Seconds(), e.From, e.To)
				},
			}))
		}
		sess, err := worksim.Open(spec, opts...)
		if err != nil {
			return err
		}
		rep, err := sess.Run(context.Background())
		if err != nil {
			return err
		}
		m := rep.Metrics
		t.AddRow(prof.name, m.LogsDelivered, m.NavErrMaxM, m.CommandsApplied,
			m.ForgeriesBlocked, m.UnsafeEpisodes, m.Collisions, len(rep.Alerts))
	}
	fmt.Println()
	fmt.Print(t.Render())
	return nil
}
