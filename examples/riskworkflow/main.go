// Riskworkflow walks the paper's full certification pathway end to end:
// combined risk assessment, treatment, operational evidence from an attack
// campaign, the modular GSN assurance case, and the CE conformity verdict —
// for both the unsecured baseline and the secured stack.
//
//	go run ./examples/riskworkflow
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/worksim/pathway"
	"repro/worksim/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "riskworkflow:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, secured := range []bool{false, true} {
		name := "UNSECURED BASELINE"
		if secured {
			name = "SECURED PATHWAY"
		}
		fmt.Printf("==== %s ====\n\n", name)
		res, err := pathway.Run(context.Background(), pathway.Options{
			Seed:        42,
			Secured:     secured,
			EvidenceRun: 12 * time.Minute,
		})
		if err != nil {
			return err
		}
		printSummary(res)
		fmt.Println()
	}
	return nil
}

func printSummary(res *pathway.Result) {
	// Risk.
	maxBefore, maxAfter := 0, 0
	for _, r := range res.RegisterBefore {
		if r.RiskValue > maxBefore {
			maxBefore = r.RiskValue
		}
	}
	for _, r := range res.RegisterAfter {
		if r.RiskValue > maxAfter {
			maxAfter = r.RiskValue
		}
	}
	fmt.Printf("TARA: max risk %d untreated -> %d with applied controls\n", maxBefore, maxAfter)

	// Interplay.
	sumB := pathway.SummarizeInterplay(res.InterplayBefore)
	sumA := pathway.SummarizeInterplay(res.InterplayAfter)
	fmt.Printf("Interplay (IEC TS 63074): %d/%d safety functions meet PLr untreated, %d/%d treated\n",
		sumB.Meeting, sumB.Functions, sumA.Meeting, sumA.Functions)

	// Campaign evidence.
	m := res.Worksite.Metrics
	t := report.NewTable("Attack-campaign evidence run", "metric", "value")
	t.AddRow("logs delivered", m.LogsDelivered)
	t.AddRow("forged commands applied", m.CommandsApplied)
	t.AddRow("forgeries blocked", m.ForgeriesBlocked)
	t.AddRow("max nav error (m)", m.NavErrMaxM)
	t.AddRow("unsafe episodes", m.UnsafeEpisodes)
	t.AddRow("IDS alert types", len(res.Worksite.Alerts))
	fmt.Print(t.Render())

	// Assurance + conformity.
	fmt.Printf("Assurance case: supported=%v, score %.2f (%d/%d solutions)\n",
		res.SACEval.Supported, res.SACEval.Score,
		res.SACEval.SupportedSolutions, res.SACEval.Solutions)
	fmt.Printf("CE conformity: %d/%d mandatory, readiness %.0f%%, ready=%v\n",
		res.Conformity.MandatoryCovered, res.Conformity.MandatoryTotal,
		100*res.Conformity.Readiness, res.Conformity.Ready)
}
