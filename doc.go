// Package repro reproduces "Cybersecurity Pathways Towards CE-Certified
// Autonomous Forestry Machines" (Mohamad et al., DSN 2024) as a complete Go
// library: a simulated partially-autonomous forestry worksite (autonomous
// forwarder, observation drone, manual harvester) with the full
// cybersecurity stack the paper's certification pathway requires, the
// combined safety–security risk-assessment methodology it proposes, and the
// assurance-case and CE-conformity machinery it argues for.
//
// The supported, stable surface is the public worksim façade:
//
//   - worksim — the Scenario catalog (Catalog/Lookup/ForAttack/LoadSpec),
//     Open(spec, ...Option) returning a steppable, context-cancellable
//     *Session, Report/Metrics, and Sweep(ctx, SweepOptions) for
//     scenario × profile × seed campaigns. Sweeps scale out: ShardSel
//     partitions the cube across processes (ParseShard/AssignShard,
//     MergeSweeps recombining shard outputs byte-identically),
//     SweepOptions.CacheDir serves repeated runs from a content-addressed
//     cache keyed on SpecHash and the full run shape, and CheckpointDir
//     resumes a killed campaign at its completed-run watermark.
//     worksim.Version identifies the engine version; every cmd/ binary
//     reports it via -version and every sweep/campaign JSON export carries
//     it.
//   - worksim/scenariospec — the declarative JSON scenario model (site,
//     weather, workers, drone, fusion policy, security profile, attack
//     schedule as data).
//   - worksim/event — the typed event stream (tick snapshots, IDS alerts,
//     attack phases, security responses, mode changes, mission transitions,
//     safety events) and the Observer interface.
//   - worksim/pathway — the certification-pathway pipeline (combined risk
//     assessment, operational evidence, assurance case, CE conformity) and
//     the standards registry.
//   - worksim/experiments — the registered E1–E10 experiment runners and
//     the Monte-Carlo campaign engine with statistical aggregation.
//   - worksim/report — the table/figure rendering primitives all artifacts
//     share.
//   - worksim/trace — the JSON-lines encoding of the event stream
//     ({"event": KIND, "data": {...}}), shared verbatim by `worksite-sim
//     -trace` files and the worksimd SSE payload.
//   - worksim/serve — simulation-as-a-service: the HTTP server behind
//     cmd/worksimd with asynchronous run/sweep jobs, live SSE event
//     streaming with replay, API-key auth, per-key rate limiting, job
//     quotas and graceful drain. A daemon run's report is byte-identical
//     to an in-process worksim run at the same parameters.
//   - worksim/bench — the tracked benchmark harness: a named catalog of
//     micro/macro benchmarks (single tick, full E1 run, 32-seed sweep) that
//     cmd/bench persists as BENCH_<date>.json so the hot path's performance
//     trajectory is diffable PR over PR.
//
// Performance: the per-tick control loop is allocation-free in steady state
// (scratch buffers, pooled tracks/frames/events, a reused wire codec),
// locked at 0 allocs/op by TestTickLoopZeroAllocs. See the README's
// "Performance" section for the recorded numbers and how to regenerate
// them.
//
// Execution is context-aware end to end: Session.RunFor/RunUntil/Run and
// the campaign worker pool observe cancellation between control ticks and
// surface ctx.Err(); a context that never fires yields byte-identical
// results to an uncancellable run, so determinism and cancellability
// compose. The cmd/ binaries install signal-driven cancellation, so Ctrl-C
// stops a simulation at the next tick with the worker pool drained; the
// worksimd daemon drains the same way, cancelling in-flight jobs between
// ticks once its drain deadline passes.
//
// Campaigns at scale: internal/shard assigns every (scenario, profile,
// seed) run to a shard by a stable FNV-1a hash — independent of enumeration
// order — so `campaign -shard i/N` processes partition a sweep and
// `campaign -merge` recombines their outputs into bytes identical to the
// single-process run. internal/resultcache stores completed runs in
// checksummed, atomically-written entries addressed by the SHA-256 of the
// full run key (spec hash, profile, seed, duration, sampling, early-stop
// name, engine version); damaged entries are detected, evicted and
// recomputed, never trusted. Checkpoint journals (JSON lines, torn-tail
// tolerant) make a killed campaign resumable. None of the three changes a
// byte of sweep output — only where the bytes come from.
//
// Everything under internal/ is engine: free to evolve, reachable only
// through the façade. The cmd/ binaries and examples/ import exclusively
// repro/worksim... packages — a boundary enforced, along with the
// determinism, context-discipline and hot-path-allocation invariants, by
// the custom static-analysis suite in internal/analysis, run as a required
// CI step via `go run ./cmd/worksimlint ./...`. Three comment directives
// steer it: //worksim:allow <reason> (audited suppression),
// //worksim:hotpath (zero-alloc tick path) and //worksim:tickloop (loop
// that must observe ctx cancellation). See the README's "Static analysis"
// section, plus the architecture overview, the package map and the
// stable-vs-internal table.
package repro
