// Package repro reproduces "Cybersecurity Pathways Towards CE-Certified
// Autonomous Forestry Machines" (Mohamad et al., DSN 2024) as a complete Go
// library: a simulated partially-autonomous forestry worksite (autonomous
// forwarder, observation drone, manual harvester) with the full
// cybersecurity stack the paper's certification pathway requires, the
// combined safety–security risk-assessment methodology it proposes, and the
// assurance-case and CE-conformity machinery it argues for.
//
// See README.md for the architecture overview, the package map, and how to
// run the benchmarks and Monte-Carlo campaigns. The benchmark harness in
// bench_test.go regenerates every table and figure through the experiment
// registry (internal/campaign); the campaign CLI (cmd/campaign) fans any
// registered experiment out over seed ranges with statistical aggregation.
//
// Operational situations are declarative: internal/scenario defines a
// JSON-serializable Spec (site, weather, workers, drone, fusion policy,
// security profile, attack schedule as data), a named catalog of standard
// scenarios, and the attack-arming registry every harness resolves attack
// names through. cmd/campaign -sweep fans the scenario x profile x seed
// cross-product out over the campaign worker pool; cmd/worksite-sim runs a
// single named scenario or a JSON spec file.
//
// Execution is session-based: worksite.NewSession (or scenario.Build, which
// arms the attack schedule on top) returns a steppable handle publishing a
// typed event stream — per-tick snapshots, IDS alerts, attack phases,
// security responses, mode changes, mission transitions, safety events — to
// subscribed observers, with the report's own KPI accumulation riding the
// same stream. cmd/worksite-sim -trace streams the events as JSON lines;
// campaign sweeps use the seam for early-stop predicates and downsampled
// per-seed timeseries.
package repro
