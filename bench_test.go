package repro

// bench_test.go regenerates every table and figure of EXPERIMENTS.md (one
// benchmark per experiment ID, plus the ablations and micro-benchmarks of
// the secure substrate). Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark prints its table/figure once (first iteration)
// and reports domain metrics via b.ReportMetric so shape comparisons are
// visible directly in the benchmark output.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/pki"
	"repro/internal/rng"
	"repro/internal/secureboot"
	"repro/internal/sotif"
	"repro/internal/worksite"
)

const benchSeed = 42

var printOnce sync.Map

func printTableOnce(key, rendered string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", rendered)
	}
}

// BenchmarkE1_WorksiteBaseline — Fig. 1: the partially autonomous worksite
// operates productively and safely under both profiles.
func BenchmarkE1_WorksiteBaseline(b *testing.B) {
	var logs, unsafe int
	for i := 0; i < b.N; i++ {
		res, err := experiments.E1WorksiteBaseline(benchSeed, 20*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		logs = res.Secured.Metrics.LogsDelivered
		unsafe = res.Secured.Metrics.UnsafeEpisodes
		printTableOnce("e1", res.Table.Render())
	}
	b.ReportMetric(float64(logs), "logs/run")
	b.ReportMetric(float64(unsafe), "unsafe-episodes/run")
}

// BenchmarkE2_DronePOVDetection — Fig. 2: the drone's additional point of
// view removes occlusion-caused misses across the occlusion sweep.
func BenchmarkE2_DronePOVDetection(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res := experiments.E2DronePOV(benchSeed, 60)
		last := res.Points[len(res.Points)-1]
		gap = last.MissFwOnly - last.MissWithDrone
		printTableOnce("e2", res.Figure.Render())
	}
	b.ReportMetric(gap, "miss-rate-reduction@0.4")
}

// BenchmarkE2a_FusionPolicy — ablation: confirmation threshold K.
func BenchmarkE2a_FusionPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTableOnce("e2a", experiments.E2aFusionPolicy(benchSeed, 40).Render())
	}
}

// BenchmarkE3_CharacteristicTable — Table I regenerated from the risk
// catalog with model coverage.
func BenchmarkE3_CharacteristicTable(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		t := experiments.E3CharacteristicTable()
		rows = t.Rows()
		printTableOnce("e3", t.Render())
	}
	b.ReportMetric(float64(rows), "characteristics")
}

// BenchmarkE4_KnowledgeTransfer — Fig. 3: mining + automotive + forestry
// scenarios cover all Table-I characteristics.
func BenchmarkE4_KnowledgeTransfer(b *testing.B) {
	var covered float64
	for i := 0; i < b.N; i++ {
		res := experiments.E4KnowledgeTransfer()
		if res.Transfer.FullyCovered {
			covered = 1
		}
		printTableOnce("e4", res.Table.Render())
	}
	b.ReportMetric(covered, "tableI-fully-covered")
}

// BenchmarkE5_AttackSafetyInterplay — attack × defence matrix (Sections
// III-B, IV-C).
func BenchmarkE5_AttackSafetyInterplay(b *testing.B) {
	var injUnsecured, injSecured float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E5AttackMatrix(benchSeed, 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Attack == "command-injection" {
				if row.Profile == "unsecured" {
					injUnsecured = float64(row.Report.Metrics.CommandsApplied)
				} else {
					injSecured = float64(row.Report.Metrics.CommandsApplied)
				}
			}
		}
		printTableOnce("e5", res.Table.Render())
	}
	b.ReportMetric(injUnsecured, "forged-cmds-applied-unsecured")
	b.ReportMetric(injSecured, "forged-cmds-applied-secured")
}

// BenchmarkE5b_ChannelAgility — ablation: narrowband jamming vs the
// channel-agility response.
func BenchmarkE5b_ChannelAgility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E5bChannelAgility(benchSeed, 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce("e5b", t.Render())
	}
}

// BenchmarkE5a_IDSLatency — ablation: IDS detection latency for the de-auth
// flood.
func BenchmarkE5a_IDSLatency(b *testing.B) {
	var lat time.Duration
	for i := 0; i < b.N; i++ {
		res, err := experiments.E5aIDSLatencyRun(benchSeed, 8*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		lat = res.DetectionLatency
		printTableOnce("e5a", res.Table.Render())
	}
	b.ReportMetric(lat.Seconds(), "detection-latency-s")
}

// BenchmarkE6_CombinedRiskAssessment — TARA + interplay, before/after
// treatment (IEC TS 63074).
func BenchmarkE6_CombinedRiskAssessment(b *testing.B) {
	var meets float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E6CombinedRisk()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, r := range res.InterAfter {
			if r.MeetsRequired {
				n++
			}
		}
		meets = float64(n)
		printTableOnce("e6-register", res.Register.Render())
		printTableOnce("e6-interplay", res.Interplay.Render())
	}
	b.ReportMetric(meets, "functions-meeting-PLr-treated")
}

// BenchmarkE7_AssuranceCase — Section V: secured pathway yields a supported
// SAC and a CE-ready verdict; the unsecured baseline does not.
func BenchmarkE7_AssuranceCase(b *testing.B) {
	var secScore, unsScore float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E7Assurance(benchSeed, 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		secScore = res.Secured.SACEval.Score
		unsScore = res.Unsecured.SACEval.Score
		printTableOnce("e7", res.Table.Render())
	}
	b.ReportMetric(secScore, "sac-score-secured")
	b.ReportMetric(unsScore, "sac-score-unsecured")
}

// BenchmarkE8_SimulationValidity — Section III-D: validity metrics
// discriminate representative from unrepresentative synthetic data.
func BenchmarkE8_SimulationValidity(b *testing.B) {
	var discriminated float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E8SimValidity(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		ok := true
		for _, r := range res.Results {
			if (r.Name == "matched") != r.Valid {
				ok = false
			}
		}
		if ok {
			discriminated = 1
		}
		printTableOnce("e8", res.Table.Render())
	}
	b.ReportMetric(discriminated, "metrics-discriminate")
}

// BenchmarkE9_SecureSubstrate — secure-channel throughput and boot-chain
// tamper sweep.
func BenchmarkE9_SecureSubstrate(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E9SecureSubstrate(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		rate = res.RecordsPerSec
		printTableOnce("e9", res.TamperTable.Render())
	}
	b.ReportMetric(rate, "records/s")
}

// BenchmarkE10_SOTIFExploration — ISO 21448 unknown-space discovery: the
// drone shrinks the unknown-unsafe area.
func BenchmarkE10_SOTIFExploration(b *testing.B) {
	var moved float64
	for i := 0; i < b.N; i++ {
		res := experiments.E10SOTIFExploration(benchSeed, 12, 25)
		moved = float64(res.Improvement.Moved)
		printTableOnce("e10", res.Table.Render())
	}
	b.ReportMetric(moved, "scenarios-made-safe-by-drone")
}

// BenchmarkE9a_RekeySweep — ablation: rekey interval vs throughput.
func BenchmarkE9a_RekeySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.E9aRekeySweep(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		printTableOnce("e9a", t.Render())
	}
}

// --- micro-benchmarks of the secure substrate ---

// BenchmarkHandshake measures the full 3-message SIGMA handshake.
func BenchmarkHandshake(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.NewChannelPair(benchSeed, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSealOpen256 measures one sealed+opened 256-byte record.
func BenchmarkSealOpen256(b *testing.B) {
	init, resp, err := experiments.NewChannelPair(benchSeed, 0)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := init.Seal(payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := resp.Open(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifiedBoot measures a full three-stage verified boot.
func BenchmarkVerifiedBoot(b *testing.B) {
	r := rng.New(benchSeed)
	ca, err := pki.NewCA("bench-vendor", r.Derive("ca"))
	if err != nil {
		b.Fatal(err)
	}
	vendor, err := ca.Issue("signing", pki.RoleOperator, 0, 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	var chain secureboot.Chain
	for _, im := range []secureboot.Image{
		{Name: "bl", Version: 1, Content: make([]byte, 4096)},
		{Name: "rtos", Version: 1, Content: make([]byte, 65536)},
		{Name: "app", Version: 1, Content: make([]byte, 262144)},
	} {
		chain.Stages = append(chain.Stages, secureboot.Stage{Image: im, Manifest: secureboot.SignManifest(vendor, im)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := secureboot.NewDevice(vendor.Cert)
		if _, err := dev.Boot(chain); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorksiteMinute measures one simulated minute of the full secured
// worksite (scheduler, radio, sensors, fusion, safety, secure channels).
func BenchmarkWorksiteMinute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := worksite.DefaultConfig(benchSeed)
		cfg.Profile = worksite.Secured()
		site, err := worksite.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := site.Run(time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectionTrial measures one people-detection trial of the E2
// evaluator.
func BenchmarkDetectionTrial(b *testing.B) {
	sc := sotif.Scenario{ID: "bench", OcclusionDensity: 0.25}
	for i := 0; i < b.N; i++ {
		core.DetectionMissRate(benchSeed, sc, true, 1)
	}
}

// BenchmarkRiskAssessment measures the full TARA over the use-case model.
func BenchmarkRiskAssessment(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E6CombinedRisk(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathway measures the complete certification-pathway pipeline with
// a short evidence run.
func BenchmarkPathway(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := core.RunPathway(core.PathwayOptions{
			Seed: benchSeed, Secured: true,
			EvidenceRun: 5 * time.Minute, SOTIFTrials: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
