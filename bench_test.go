package repro

// bench_test.go regenerates every table and figure of the paper reproduction
// (one benchmark per experiment ID, plus the ablations and micro-benchmarks
// of the secure substrate). Run with:
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks are driven through the campaign registry
// (internal/campaign): each looks its experiment up by ID, runs it at the
// registered defaults, prints its tables/figures once (first iteration) and
// reports the registered domain metrics via b.ReportMetric so shape
// comparisons are visible directly in the benchmark output.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/pki"
	"repro/internal/rng"
	"repro/internal/secureboot"
	"repro/internal/sotif"
	"repro/internal/worksite"
	"repro/worksim/bench"
)

const benchSeed = 42

var printOnce sync.Map

func printTableOnce(key, rendered string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", rendered)
	}
}

// benchExperiment runs the registered experiment at its default parameters
// (seed benchSeed), prints its artifacts once, and reports the named metrics.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	exp, ok := campaign.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	p := exp.Defaults
	p.Seed = benchSeed
	var out campaign.Outcome
	for i := 0; i < b.N; i++ {
		var err error
		out, err = exp.Run(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		for j, t := range out.Tables {
			printTableOnce(fmt.Sprintf("%s-t%d", id, j), t.Render())
		}
		for j, f := range out.Figures {
			printTableOnce(fmt.Sprintf("%s-f%d", id, j), f.Render())
		}
	}
	for _, m := range metrics {
		v, ok := out.Metrics[m]
		if !ok {
			b.Fatalf("experiment %q exports no metric %q", id, m)
		}
		b.ReportMetric(v, m)
	}
}

// BenchmarkE1_WorksiteBaseline — Fig. 1: the partially autonomous worksite
// operates productively and safely under both profiles.
func BenchmarkE1_WorksiteBaseline(b *testing.B) {
	benchExperiment(b, "e1", "logs/secured", "unsafe/secured")
}

// BenchmarkE2_DronePOVDetection — Fig. 2: the drone's additional point of
// view removes occlusion-caused misses across the occlusion sweep.
func BenchmarkE2_DronePOVDetection(b *testing.B) {
	benchExperiment(b, "e2", "miss_reduction/occ=0.40")
}

// BenchmarkE2a_FusionPolicy — ablation: confirmation threshold K.
func BenchmarkE2a_FusionPolicy(b *testing.B) {
	benchExperiment(b, "e2a", "miss_with_drone/k=2")
}

// BenchmarkE3_CharacteristicTable — Table I regenerated from the risk
// catalog with model coverage.
func BenchmarkE3_CharacteristicTable(b *testing.B) {
	benchExperiment(b, "e3", "characteristics")
}

// BenchmarkE4_KnowledgeTransfer — Fig. 3: mining + automotive + forestry
// scenarios cover all Table-I characteristics.
func BenchmarkE4_KnowledgeTransfer(b *testing.B) {
	benchExperiment(b, "e4", "fully_covered")
}

// BenchmarkE5_AttackSafetyInterplay — attack × defence matrix (Sections
// III-B, IV-C).
func BenchmarkE5_AttackSafetyInterplay(b *testing.B) {
	benchExperiment(b, "e5",
		"cmds_applied/command-injection/unsecured",
		"cmds_applied/command-injection/secured")
}

// BenchmarkE5b_ChannelAgility — ablation: narrowband jamming vs the
// channel-agility response.
func BenchmarkE5b_ChannelAgility(b *testing.B) {
	benchExperiment(b, "e5b", "logs/agility=on", "logs/agility=off")
}

// BenchmarkE5a_IDSLatency — ablation: IDS detection latency for the de-auth
// flood.
func BenchmarkE5a_IDSLatency(b *testing.B) {
	benchExperiment(b, "e5a", "detection_latency_s")
}

// BenchmarkE6_CombinedRiskAssessment — TARA + interplay, before/after
// treatment (IEC TS 63074).
func BenchmarkE6_CombinedRiskAssessment(b *testing.B) {
	benchExperiment(b, "e6", "meets_plr/treated")
}

// BenchmarkE7_AssuranceCase — Section V: secured pathway yields a supported
// SAC and a CE-ready verdict; the unsecured baseline does not.
func BenchmarkE7_AssuranceCase(b *testing.B) {
	benchExperiment(b, "e7", "sac_score/secured", "sac_score/unsecured")
}

// BenchmarkE8_SimulationValidity — Section III-D: validity metrics
// discriminate representative from unrepresentative synthetic data.
func BenchmarkE8_SimulationValidity(b *testing.B) {
	benchExperiment(b, "e8", "discriminates")
}

// BenchmarkE9_SecureSubstrate — secure-channel handshake and boot-chain
// tamper sweep (throughput lives in BenchmarkSealOpen256).
func BenchmarkE9_SecureSubstrate(b *testing.B) {
	benchExperiment(b, "e9", "tampers_detected")
}

// BenchmarkE10_SOTIFExploration — ISO 21448 unknown-space discovery: the
// drone shrinks the unknown-unsafe area.
func BenchmarkE10_SOTIFExploration(b *testing.B) {
	benchExperiment(b, "e10", "moved_to_safe")
}

// BenchmarkE9a_RekeySweep — ablation: rekey interval vs throughput
// (wall-clock table; no campaign metrics).
func BenchmarkE9a_RekeySweep(b *testing.B) {
	benchExperiment(b, "e9a")
}

// BenchmarkSim runs the tracked benchmark catalog (worksim/bench) — the same
// named micro/macro benchmarks cmd/bench persists to BENCH_<date>.json, so CI
// exercises exactly what the perf-tracking tool records.
func BenchmarkSim(b *testing.B) {
	for _, bm := range bench.Catalog() {
		b.Run(bm.Name, bm.Fn)
	}
}

// --- campaign fan-out benchmarks ---

// benchCampaign fans e1 (short run) over 8 seeds with the given pool width;
// comparing Serial vs Parallel shows the multi-seed speedup on multi-core
// hosts.
func benchCampaign(b *testing.B, parallel int) {
	exp, ok := campaign.Lookup("e1")
	if !ok {
		b.Fatal("e1 not registered")
	}
	opts := campaign.Options{
		Seeds:    campaign.SeedRange{Base: 1, Count: 8},
		Parallel: parallel,
		Params:   campaign.Params{Duration: 4 * time.Minute},
	}
	logs := -1.0
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(context.Background(), exp, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range res.Aggregates {
			if a.Metric == "logs/secured" {
				logs = a.Mean
			}
		}
		printTableOnce(fmt.Sprintf("campaign-e1-p%d", parallel), res.Table().Render())
	}
	if logs < 0 {
		b.Fatal(`campaign e1 exported no "logs/secured" aggregate`)
	}
	b.ReportMetric(logs, "mean-logs/secured")
}

// BenchmarkCampaignE1_8Seeds_Serial — baseline: one worker.
func BenchmarkCampaignE1_8Seeds_Serial(b *testing.B) { benchCampaign(b, 1) }

// BenchmarkCampaignE1_8Seeds_Parallel — bounded pool at 8 workers.
func BenchmarkCampaignE1_8Seeds_Parallel(b *testing.B) { benchCampaign(b, 8) }

// --- micro-benchmarks of the secure substrate ---

// BenchmarkHandshake measures the full 3-message SIGMA handshake.
func BenchmarkHandshake(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.NewChannelPair(benchSeed, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSealOpen256 measures one sealed+opened 256-byte record.
func BenchmarkSealOpen256(b *testing.B) {
	init, resp, err := experiments.NewChannelPair(benchSeed, 0)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := init.Seal(payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := resp.Open(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifiedBoot measures a full three-stage verified boot.
func BenchmarkVerifiedBoot(b *testing.B) {
	r := rng.New(benchSeed)
	ca, err := pki.NewCA("bench-vendor", r.Derive("ca"))
	if err != nil {
		b.Fatal(err)
	}
	vendor, err := ca.Issue("signing", pki.RoleOperator, 0, 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	var chain secureboot.Chain
	for _, im := range []secureboot.Image{
		{Name: "bl", Version: 1, Content: make([]byte, 4096)},
		{Name: "rtos", Version: 1, Content: make([]byte, 65536)},
		{Name: "app", Version: 1, Content: make([]byte, 262144)},
	} {
		chain.Stages = append(chain.Stages, secureboot.Stage{Image: im, Manifest: secureboot.SignManifest(vendor, im)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := secureboot.NewDevice(vendor.Cert)
		if _, err := dev.Boot(chain); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorksiteMinute measures one simulated minute of the full secured
// worksite (scheduler, radio, sensors, fusion, safety, secure channels).
func BenchmarkWorksiteMinute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := worksite.DefaultConfig(benchSeed)
		cfg.Profile = worksite.Secured()
		site, err := worksite.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := site.Run(time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectionTrial measures one people-detection trial of the E2
// evaluator.
func BenchmarkDetectionTrial(b *testing.B) {
	sc := sotif.Scenario{ID: "bench", OcclusionDensity: 0.25}
	for i := 0; i < b.N; i++ {
		core.DetectionMissRate(benchSeed, sc, true, 1)
	}
}

// BenchmarkRiskAssessment measures the full TARA over the use-case model.
func BenchmarkRiskAssessment(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E6CombinedRisk(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathway measures the complete certification-pathway pipeline with
// a short evidence run.
func BenchmarkPathway(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := core.RunPathway(context.Background(), core.PathwayOptions{
			Seed: benchSeed, Secured: true,
			EvidenceRun: 5 * time.Minute, SOTIFTrials: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
